"""The Two-Phase Invalidation (TPI) scheme — the paper's contribution.

Hardware state per processor: a k-bit **epoch counter** R (all processors
advance in lockstep at epoch barriers), a k-bit **timetag per cache word**,
and a small file of per-shared-array **last-write-epoch registers** W[a]
(the timestamp lineage of Min & Baer [28, 29] the paper builds on).  The
compiler emits, in each epoch's epilogue, updates ``W[a] := R`` for every
array the epoch may write — statically known, identical on every node, so
no interprocessor communication is needed.

Semantics implemented (Section 2.2 of the paper):

* a **write** sets the word's timetag to the current counter value R
  (write-through, write-allocate);
* a **read-miss fill** sets every word of the incoming line to R-1 except
  that the *accessed* word gets R when the compiler proved no same-epoch
  concurrent writer (an ordinary read or timestamp Time-Read); a *strict*
  Time-Read's fill keeps R-1 even on the accessed word, because the fetched
  value may race a concurrent write and must not be endorsed as
  epoch-R-fresh.  This is the paper's "other words get (R counter - 1)"
  rule covering implicit RAW/WAR dependences between concurrent tasks;
* a **normal read** hits on any valid word (the compiler proved freshness);
* a **strict Time-Read** (possible same-epoch writer) hits only on a word
  the task itself produced this epoch: timetag == R;
* a **timestamp Time-Read** hits iff the word was validated strictly after
  the array's last possibly-writing epoch:
  ``(R - tag) mod 2^k <= min(R - W[a], 2^k - 1)``.
  A copy validated inside that window postdates every possible conflicting
  write, so the hit is coherent while inter-task locality across epochs is
  preserved — a processor re-reading data it wrote in the producing epoch
  hits, and loop-invariant data keeps hitting indefinitely;
* arrays with a potential cross-iteration write-write conflict (an
  illegal-DOALL guard) get ``W[a] := R + 1`` so even the writers' own
  copies are re-fetched afterwards;
* inside a **critical section** a Time-Read is a forced miss
  (cache-invalidate + load, as implementable with the MIPS R10000 /
  PowerPC cache ops) and the write buffer drains at lock release;
* when the counter crosses a **phase boundary** (every 2^(k-1) epochs), a
  hardware reset sweep invalidates exactly the words whose k-bit timetags
  lie in the phase being entered.  The sweep bounds every surviving word's
  true age below 2^k, which makes the modular age comparison exact (no
  aliasing) — and it is why small timetags hurt: frequent sweeps destroy
  old-but-still-fresh words, the effect the paper's timetag-width
  sensitivity study measures.

Unnecessary-miss classification: a Time-Read miss whose cached copy was
still current (cached version == memory version) was *compiler
conservatism* (the analogue of the directory scheme's false sharing); one
whose copy was genuinely overwritten is a true-sharing miss.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.coherence.api import AccessResult, CoherenceScheme, SimContext
from repro.coherence.tpi_rules import (
    crossed_phase_bounds,
    fill_tag,
    strict_hit,
    timestamp_hit,
    w_register_update,
)
from repro.common.config import ConsistencyModel, TimetagResetPolicy
from repro.common.errors import SimulationError
from repro.common.stats import MissKind
from repro.compiler.marking import RefMark
from repro.memsys.cache import Cache
from repro.memsys.lazystate import (
    LazyList,
    PerProcWords,
    TouchBitmap,
    UniformStalls,
    dense_state,
)
from repro.memsys.wbuffer import make_write_buffer, wbuffer_extras


class TpiScheme(CoherenceScheme):
    name = "tpi"
    batch_hot_rule = "written"
    # TPI reads its own timetag config and the write-buffer kind; the
    # directory and Tardis-lease parameters are foreign to it.
    config_dead_fields = ("directory", "tardis")

    def __init__(self, ctx: SimContext):
        super().__init__(ctx)
        machine = self.machine
        if ctx.layout is None:
            raise SimulationError("TPI needs the memory layout (W registers)")
        self.caches: LazyList = LazyList(machine.n_procs,
                                         lambda _p: Cache(machine.cache))
        self.wbuffers = LazyList(
            machine.n_procs,
            lambda _p: make_write_buffer(machine.write_buffer))
        self.epoch_index = 0  # unbounded; the k-bit counter is (this mod 2^k)
        self.modulus = machine.tpi.counter_modulus
        self.phase_size = machine.tpi.phase_size
        self.line_words = machine.cache.line_words
        self.touched = TouchBitmap(machine.n_procs, ctx.shadow.total_words)
        self.per_word_tags = machine.tpi.tag_per_word
        self.region_of, self.region_names = ctx.layout.shared_region_table()
        if dense_state():
            # The dense baseline materializes the word-address table the
            # closed-form region lookup replaced.
            self.region_of = self.region_of[np.arange(ctx.shadow.total_words)]
        # W register per shared array: epoch index of the last possibly-
        # writing epoch (compiler-emitted updates; saturating in hardware).
        self.w_regs = np.full(len(self.region_names), -(10 ** 9), dtype=np.int64)
        self.resets = 0
        self.reset_invalidations = 0
        self.time_reads = 0  # dynamic Time-Read executions
        self.time_read_hits = 0
        self.strict_reads = 0

    # ---------------------------------------------------------------- epochs

    def begin_epoch(self, index: int, parallel: bool) -> Dict[int, int]:
        old = self.epoch_index
        self.epoch_index += 1
        stalls: Dict[int, int] = {}
        policy = self.machine.tpi.reset_policy
        if policy is TimetagResetPolicy.TWO_PHASE:
            bounds = crossed_phase_bounds(old, self.epoch_index,
                                          self.modulus, self.phase_size)
            if bounds is not None:
                lo, hi = bounds
                self.resets += 1
                # Every processor stalls for the sweep, but only caches
                # holding words can invalidate any: the sweep itself walks
                # materialized caches (an empty cache resets zero words).
                for _proc, cache in self.caches.materialized():
                    self.reset_invalidations += cache.two_phase_reset(
                        lo, hi, self.modulus)
                return UniformStalls(self.machine.n_procs,
                                     self.machine.tpi.reset_stall_cycles)
        elif policy is TimetagResetPolicy.FLUSH:
            # The R-1 fill rule lets a tag lag its validation time by one
            # epoch, so a flush every 2^k epochs would leave a one-epoch
            # aliasing hole (tag age reaches exactly 2^k = 0 mod 2^k).
            # Flushing every 2^k - 1 epochs closes it; the two-phase sweep
            # needs no such correction because it selects by tag value.
            if self.epoch_index % max(1, self.modulus - 1) == 0:
                self.resets += 1
                for _proc, cache in self.caches.materialized():
                    self.reset_invalidations += cache.flush_all_words()
                return UniformStalls(self.machine.n_procs,
                                     self.machine.tpi.reset_stall_cycles)
        return stalls

    def end_epoch(self, write_key: Optional[int] = None) -> Dict[int, int]:
        # Compiler-emitted epilogue: record which arrays this epoch may have
        # written (racy arrays count as one epoch newer, distrusting even
        # the writers' own copies).
        writes = self.ctx.marking.epoch_writes.get(write_key, {})
        for array, racy in writes.items():
            region = self.region_names.index(array)
            self.w_regs[region] = w_register_update(self.epoch_index, racy)
        return PerProcWords(self.machine.n_procs,
                            {proc: wb.drain()
                             for proc, wb in self.wbuffers.materialized()})

    def release_fence(self, proc: int) -> AccessResult:
        words = self.wbuffers[proc].drain()
        latency = self.network.control_latency() + words
        return AccessResult(latency=latency, kind=MissKind.HIT,
                            write_words=words)

    def extras(self) -> Dict[str, int]:
        out = {"time_reads": self.time_reads,
               "time_read_hits": self.time_read_hits,
               "strict_reads": self.strict_reads}
        out.update(wbuffer_extras(self.wbuffers.materialized_items()))
        return out

    def make_batch_kernel(self):
        from repro.coherence.batch import TpiBatchKernel

        return TpiBatchKernel.build(self)

    # -------------------------------------------------------------- accesses

    def _time_read_hits(self, cache: Cache, loc, word: int, addr: int,
                        strict: bool) -> bool:
        """The hardware hit test for a Time-Read on a valid word.

        With per-line tags (``tag_per_word=False``), the line tag records
        the *fill* time — the minimum validation time of the line's words —
        so strict Time-Reads can never hit (the hardware cannot tell which
        word the task itself produced this epoch).
        """
        if not self.per_word_tags:
            if strict:
                return False
            tag = int(cache.timetag[loc.set_index, loc.way, 0])
        else:
            tag = int(cache.timetag[loc.set_index, loc.way, word])
        if strict:
            return strict_hit(self.epoch_index, tag, self.modulus)
        region = int(self.region_of[addr])
        if region < 0:
            return True  # not a shared array (cannot happen for marked reads)
        return timestamp_hit(self.epoch_index, tag,
                             int(self.w_regs[region]), self.modulus)

    def read(self, proc: int, addr: int, site: int, shared: bool,
             in_critical: bool) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        marking = self.ctx.marking
        mark = marking.tpi_mark(site) if shared else RefMark.READ
        strict = mark is RefMark.TIME_READ and marking.is_strict(site)
        loc = cache.probe(line_addr)

        if mark is RefMark.TIME_READ:
            self.time_reads += 1
            if strict:
                self.strict_reads += 1
        hit = False
        if loc is not None and cache.word_valid[loc.set_index, loc.way, word]:
            if mark is RefMark.READ:
                hit = True
            elif not in_critical:
                hit = self._time_read_hits(cache, loc, word, addr, strict)
                if hit:
                    self.time_read_hits += 1

        if hit:
            cache.touch(loc)
            cache.used[loc.set_index, loc.way, word] = True
            version = int(cache.version[loc.set_index, loc.way, word])
            self._note_touch(proc, addr)
            self._check_read_version(addr, version)
            return AccessResult(latency=self.machine.hit_latency,
                                kind=MissKind.HIT, version=version)

        kind = self._classify_read_miss(cache, loc, word, addr, proc)
        self._note_touch(proc, addr)
        stamp_current = mark is RefMark.READ or not strict
        if loc is not None:
            new_loc = self._refresh(cache, loc, line_addr, word, stamp_current)
        else:
            new_loc = self._fill(cache, line_addr, word, stamp_current)
        version = int(cache.version[new_loc.set_index, new_loc.way, word])
        cache.used[new_loc.set_index, new_loc.way, word] = True
        self._check_read_version(addr, version)
        return AccessResult(latency=self.network.miss_latency(self.line_words),
                            kind=kind, read_words=1 + self.line_words,
                            version=version)

    def write(self, proc: int, addr: int, site: int, shared: bool,
              in_critical: bool) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        read_words = 0
        if loc is None:
            # Write-allocate: fetch the line (non-blocking for the CPU).
            loc = self._fill(cache, line_addr, word, stamp_current=False)
            read_words = 1 + self.line_words
        s, w = loc.set_index, loc.way
        version = self.shadow.write(addr, proc)
        cache.word_valid[s, w, word] = True
        if self.per_word_tags:
            # Per-line tags must keep the line's MIN validation time, so a
            # single-word write cannot raise them.
            cache.timetag[s, w, word] = self.epoch_index
        cache.version[s, w, word] = version
        cache.used[s, w, word] = True
        cache.touch(loc)
        self._note_touch(proc, addr)
        # Private data lives in local memory: its write-through costs no
        # network traffic and never stalls.
        write_words = self.wbuffers[proc].note_write(addr) if shared else 0
        latency = self.machine.hit_latency
        if (shared
                and self.machine.consistency is ConsistencyModel.SEQUENTIAL):
            latency = self.network.word_latency()  # write globally performed
        return AccessResult(latency=latency, kind=MissKind.HIT,
                            read_words=read_words, write_words=write_words,
                            version=version)

    # --------------------------------------------------------------- helpers

    def _note_touch(self, proc: int, addr: int) -> None:
        self.touched[proc, addr] = True

    def _fill(self, cache: Cache, line_addr: int, accessed_word: int,
              stamp_current: bool):
        """Line fill from memory with the paper's timetag assignment."""
        loc, _evicted, _dirty = cache.install(line_addr)
        s, w = loc.set_index, loc.way
        base = cache.line_base(line_addr)
        cache.version[s, w, :] = self.shadow.version[base:base + self.line_words]
        cache.timetag[s, w, :] = fill_tag(self.epoch_index, False, stamp_current)
        if self.per_word_tags:
            cache.timetag[s, w, accessed_word] = fill_tag(
                self.epoch_index, True, stamp_current)
        return loc

    def _refresh(self, cache: Cache, loc, line_addr: int, accessed_word: int,
                 stamp_current: bool):
        if not self.per_word_tags:
            # Per-line tags: a refetch is indistinguishable from a fill —
            # the whole line's (single) tag becomes R-1, versions refresh.
            s, w = loc.set_index, loc.way
            base = cache.line_base(line_addr)
            cache.version[s, w, :] = self.shadow.version[
                base:base + self.line_words]
            cache.timetag[s, w, :] = fill_tag(self.epoch_index, False,
                                              stamp_current)
            cache.word_valid[s, w, :] = True
            cache.touch(loc)
            return loc
        """Time-Read word-miss on a line that is already resident.

        The refetched line data is fresh for every word, so each word's
        timetag is raised to R-1 (the fill rule) unless it already holds a
        newer validation — a word the task itself produced this epoch (tag
        R) must NOT be downgraded, or sweeping Time-Reads along a line
        would thrash each other's validations.  Reset-invalidated words are
        revived the same way.
        """
        s, w = loc.set_index, loc.way
        base = cache.line_base(line_addr)
        fresh = self.shadow.version[base:base + self.line_words]
        upgrade = (~cache.word_valid[s, w, :]
                   | (cache.timetag[s, w, :] < self.epoch_index - 1))
        cache.version[s, w, upgrade] = fresh[upgrade]
        cache.timetag[s, w, upgrade] = fill_tag(self.epoch_index, False,
                                                stamp_current)
        cache.word_valid[s, w, :] = True
        cache.version[s, w, accessed_word] = fresh[accessed_word]
        cache.timetag[s, w, accessed_word] = fill_tag(
            self.epoch_index, True, stamp_current)
        cache.touch(loc)
        return loc

    def _classify_read_miss(self, cache: Cache, loc, word: int, addr: int,
                            proc: int) -> MissKind:
        if loc is not None and cache.word_valid[loc.set_index, loc.way, word]:
            # Valid word, but the timetag failed the Time-Read check (or a
            # critical section forced the miss).
            cached = int(cache.version[loc.set_index, loc.way, word])
            if cached == self.shadow.read_version(addr):
                return MissKind.CONSERVATIVE
            return MissKind.TRUE_SHARING
        if loc is not None:
            # Line present but the word's valid bit is off: only the
            # two-phase reset clears individual word valid bits.
            return MissKind.RESET
        if self.touched[proc, addr]:
            return MissKind.REPLACEMENT
        return MissKind.COLD
