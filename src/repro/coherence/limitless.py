"""LimitLess directory (DIR_i NB-style) [2].

Identical to the full-map protocol except that each directory entry has only
``i`` hardware pointers; when a line has more than ``i`` sharers, directory
operations on it trap to software on the home node, adding a fixed latency
to the transaction.  The storage model (Figure 5 of the paper) is in
``repro.overhead.storage``; this functional model lets the LimitLess scheme
participate in the performance experiments too.
"""

from __future__ import annotations

from repro.coherence.directory import FullMapDirectoryScheme


class LimitLessScheme(FullMapDirectoryScheme):
    name = "limitless"
    # Unlike the full map it does read DirectoryConfig (pointer count,
    # trap cost), so only the hw-inherited timetag/write-buffer/lease
    # fields stay dead.
    config_dead_fields = ("tpi", "write_buffer", "tardis")

    def __init__(self, ctx):
        super().__init__(ctx)
        self.pointers = ctx.machine.directory.limitless_pointers
        self.trap_cycles = ctx.machine.directory.overflow_trap_cycles
        self.software_traps = 0

    def extras(self):
        out = super().extras()
        out["software_traps"] = self.software_traps
        return out

    def _overflow_penalty(self, n_sharers: int) -> int:
        if n_sharers > self.pointers:
            self.software_traps += 1
            return self.trap_cycles
        return 0
