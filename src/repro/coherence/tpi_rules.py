"""The TPI protocol's decision rules as pure functions.

This module is the *single source of truth* for the reconstructed TPI
hardware semantics (see PAPER.md and :mod:`repro.coherence.tpi`): the
Time-Read freshness test, the R-1 fill rule, the compiler-emitted
W-register update, and the two-phase reset's phase geometry.  Everything
here is a side-effect-free function of plain integers (or, elementwise,
of numpy arrays — every rule is written so broadcasting works), and
everything that *executes* those semantics calls in here:

* :class:`repro.coherence.tpi.TpiScheme` — the per-event reference path;
* :meth:`repro.memsys.cache.Cache.two_phase_reset` — the hardware sweep;
* :class:`repro.coherence.batch.TpiBatchKernel` — the vectorized fast
  engine (arrays in, arrays out);
* :mod:`repro.analysis.modelcheck` — the bounded-exhaustive model
  checker, which enumerates every reachable protocol state of tiny
  configurations and asserts staleness safety **against these exact
  functions**, not a transcription of them.

Keeping the rules factored here is what makes the model-checking claim
meaningful: a future change to the protocol is automatically the thing
being verified.

Epoch indices are unbounded Python ints throughout (the production
simulator stores full epoch indices and reduces mod ``2^k`` only inside
the comparisons, exactly as the k-bit hardware would observe them).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def word_age(epoch: int, tag, modulus: int):
    """Age of a cached word as the k-bit hardware computes it.

    ``(R - tag) mod 2^k`` — exact (equal to the true age) whenever the
    two-phase reset has kept the word's true age below ``2^k``.
    """
    return (epoch - tag) % modulus


def time_read_window(epoch: int, w_reg, modulus: int):
    """Maximum admissible age for a timestamp Time-Read hit.

    ``min(R - W[a], 2^k - 1)``: a copy validated strictly after the
    array's last possibly-writing epoch postdates every conflicting
    write.  The cap at ``2^k - 1`` keeps the comparison meaningful for
    arrays whose last write is older than the tag space can express
    (including the never-written sentinel, for which every valid word is
    admissible).
    """
    gap = epoch - w_reg
    cap = modulus - 1
    if isinstance(gap, (int, np.integer)):
        return cap if gap > cap else gap
    return np.minimum(gap, cap)


def timestamp_hit(epoch: int, tag, w_reg, modulus: int):
    """Hit test for a timestamp Time-Read on a valid word."""
    return word_age(epoch, tag, modulus) <= time_read_window(
        epoch, w_reg, modulus)


def strict_hit(epoch: int, tag, modulus: int):
    """Hit test for a strict Time-Read: only a word validated this epoch
    (the task's own production) may satisfy it."""
    return word_age(epoch, tag, modulus) == 0


def fill_tag(epoch: int, accessed: bool, stamp_current: bool) -> int:
    """Timetag assigned to one word of an incoming line.

    The paper's fill rule: every word of the fetched line gets ``R - 1``
    (the fetch may race a same-epoch write the hardware cannot order),
    except the *accessed* word of an ordinary read or non-strict
    Time-Read, which the compiler proved free of same-epoch writers and
    which may therefore be endorsed as epoch-R fresh.
    """
    if accessed and stamp_current:
        return epoch
    return epoch - 1


def w_register_update(epoch: int, racy: bool) -> int:
    """Compiler-emitted epoch-epilogue value for ``W[a]``.

    ``R`` for an ordinarily written array; ``R + 1`` for an array with a
    potential cross-iteration write-write conflict (the illegal-DOALL
    guard), so even the writers' own copies are re-fetched afterwards.
    """
    return epoch + (1 if racy else 0)


def phase_of(epoch: int, modulus: int, phase_size: int) -> int:
    """Which tag phase the k-bit counter value of ``epoch`` lies in."""
    return (epoch % modulus) // phase_size


def crossed_phase_bounds(old_epoch: int, new_epoch: int, modulus: int,
                         phase_size: int) -> Optional[Tuple[int, int]]:
    """Tag range the hardware reset sweeps when advancing an epoch.

    ``None`` when no phase boundary is crossed; otherwise the inclusive
    ``(lo, hi)`` k-bit tag interval of the phase being *entered* — the
    values about to be recycled, whose surviving holders would otherwise
    alias a full counter wrap later.
    """
    old_phase = phase_of(old_epoch, modulus, phase_size)
    new_phase = phase_of(new_epoch, modulus, phase_size)
    if old_phase == new_phase:
        return None
    lo = new_phase * phase_size
    return lo, lo + phase_size - 1


def reset_selects(tag, phase_lo: int, phase_hi: int, modulus: int):
    """Whether the two-phase reset invalidates a word with this timetag.

    Elementwise over arrays; the per-word valid bit is the caller's
    concern (an invalid word has nothing to sweep).
    """
    ktag = tag % modulus
    return (ktag >= phase_lo) & (ktag <= phase_hi)
