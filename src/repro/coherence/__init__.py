"""The coherence schemes the paper compares — plus two modern baselines.

=============  ==============================================================
``base``       no caching of shared data; every shared access is remote
``sc``         software cache-bypass: marked reads always go to memory
``tpi``        Two-Phase Invalidation (the paper's contribution)
``hw``         full-map directory, 3-state MSI invalidation, write-back
``limitless``  LimitLess DIR_i directory with software-handled overflow
``update``     write-update directory (Firefly/Dragon-style), extension
``tardis``     Tardis timestamp/lease coherence (PAPERS.md), extension
``snoop``      bus-snooping MSI, write-back (SNIPPETS.md §2), extension
=============  ==============================================================
"""

from repro.coherence.api import AccessResult, CoherenceScheme, SimContext, make_scheme
from repro.coherence.base import BaseScheme
from repro.coherence.sc import SoftwareBypassScheme
from repro.coherence.tpi import TpiScheme
from repro.coherence.directory import FullMapDirectoryScheme
from repro.coherence.limitless import LimitLessScheme
from repro.coherence.snoop import SnoopBusScheme
from repro.coherence.tardis import TardisScheme
from repro.coherence.update import UpdateDirectoryScheme

SCHEME_NAMES = ("base", "sc", "tpi", "hw", "limitless", "update", "tardis",
                "snoop")

__all__ = [
    "AccessResult",
    "BaseScheme",
    "CoherenceScheme",
    "FullMapDirectoryScheme",
    "LimitLessScheme",
    "SCHEME_NAMES",
    "SimContext",
    "SnoopBusScheme",
    "SoftwareBypassScheme",
    "TardisScheme",
    "TpiScheme",
    "UpdateDirectoryScheme",
    "make_scheme",
]
