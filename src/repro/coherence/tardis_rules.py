"""The Tardis lease protocol's decision rules as pure functions.

This module is the *single source of truth* for the reconstructed Tardis
timestamp-coherence semantics (PAPERS.md — Tardis / Tardis 2.0, the
modern descendant of TPI's timetag idea): the lease hit test, the lease
grant and renewal rules, the write-timestamp rule, the barrier join, and
the bounded-counter rebase geometry.  Everything here is a
side-effect-free function of plain integers (or, elementwise, of numpy
arrays — every rule is written so broadcasting works), and everything
that *executes* those semantics calls in here:

* :class:`repro.coherence.tardis.TardisScheme` — the per-event reference
  path;
* :class:`repro.coherence.batch.TardisBatchKernel` — the vectorized fast
  engine (arrays in, arrays out);
* :mod:`repro.analysis.modelcheck_tardis` — the bounded-exhaustive model
  checker, which enumerates every reachable protocol state of tiny
  configurations and asserts staleness safety **against these exact
  functions**, not a transcription of them.

Logical timestamps are unbounded Python ints throughout; the hardware's
``k``-bit bounded counters are modeled by the rebase rules at the
bottom, which shift the representable window forward whenever the lease
frontier approaches ``base + 2^k`` (Tardis 2.0's timestamp compression:
all live timestamps are clamped to a new base, preserving every *order*
the protocol can still observe).
"""

from __future__ import annotations

import numpy as np


def lease_hit(pts, rts):
    """Hit test for a shared read against a cached lease.

    A cached copy may satisfy a read at processor timestamp ``pts`` iff
    its read lease extends at least that far: ``rts >= pts``.  Expired
    leases must re-validate against memory — this is the whole protocol;
    there are no invalidation messages.
    """
    return rts >= pts


def lease_grant(pts, mem_rts, lease: int):
    """Memory-side ``rts`` after granting a lease to a reader at ``pts``.

    ``max(mem_rts, pts + lease)`` — the frontier only moves forward, and
    ``max`` is commutative, so concurrent same-epoch readers may be
    granted in any order (the property the batched kernel relies on).
    """
    return np.maximum(mem_rts, pts + lease)


def own_lease(pts, lease: int):
    """The reader's *own* cached ``rts`` after a grant or renewal.

    ``pts + lease`` — deliberately *not* the (order-dependent) memory
    frontier, so a reader's cached state is a function of its own
    timestamp alone and grants commute.
    """
    return pts + lease


def write_timestamp(pts, mem_rts):
    """Timestamp at which a shared write is ordered.

    ``max(pts, mem_rts + 1)``: the write must be ordered after every
    lease ever granted on the line, so readers holding live leases keep
    reading the *old* value without any invalidation — and after the
    writer's own past.
    """
    return np.maximum(pts, mem_rts + 1)


def pts_join(ptss):
    """Barrier rule: every processor's ``pts`` jumps to the global max.

    Tardis orders epochs by physical barriers; joining the timestamps at
    the barrier forces every post-barrier read past every pre-barrier
    write's timestamp, which is what makes stale leases expire.
    """
    return max(int(p) for p in ptss)


def renewal_ok(cached_wts, mem_wts, base):
    """Whether an expired lease may be renewed without a data transfer.

    The cached copy is current iff the line has not been written since
    the fill — ``cached_wts == mem_wts``.  The guard ``mem_wts > base``
    rejects the clamp-ambiguous case: after a rebase, every timestamp at
    exactly ``base`` may have been collapsed from *different* pre-rebase
    values, so equality there proves nothing and the copy re-fetches.
    """
    return (cached_wts == mem_wts) & (mem_wts > base)


def rebase_needed(pts: int, lease: int, base: int, modulus: int) -> bool:
    """Whether the k-bit counters must rebase before the next epoch.

    The largest timestamp the next epoch can mint is bounded by
    ``pts + lease`` (a grant) — rebase when that frontier no longer fits
    in the ``[base, base + 2^k)`` representable window.
    """
    return (pts + lease) - base >= modulus


def rebase_base(pts: int, modulus: int) -> int:
    """New base after a rebase: keep half the window behind ``pts``.

    ``pts - (2^(k-1) - 1)`` — live leases (at most ``pts + lease`` with
    ``lease <= 2^(k-1) - 1``) stay representable ahead of ``pts``, while
    everything older than half a window collapses onto the base.
    """
    return pts - ((modulus >> 1) - 1)


def clamp(ts, base):
    """Timestamp compression applied to every stored timestamp at rebase.

    ``max(ts, base)`` — elementwise over the cached/memory timestamp
    arrays.  Orders among surviving (> base) timestamps are preserved;
    collapsed ones become mutually ambiguous, which is exactly what
    :func:`renewal_ok`'s ``mem_wts > base`` guard accounts for.
    """
    return np.maximum(ts, base)
