"""The software cache-bypass scheme (SC).

SC uses the same compiler analysis as TPI but **no timetag hardware**:
every read the compiler could not prove fresh simply bypasses the cache and
fetches the word from main memory (one word, no allocation), so the stale
cached copy is never observed.  Writes are write-through write-allocate, so
a task's own writes *do* refresh its cache — SC exploits the partial,
write-validated reuse inside a task but no inter-task locality, which is
exactly the limitation the paper's comparison table records for it.
"""

from __future__ import annotations

from typing import Dict

from repro.coherence.api import AccessResult, CoherenceScheme, SimContext
from repro.common.config import ConsistencyModel
from repro.common.stats import MissKind
from repro.compiler.marking import RefMark
from repro.memsys.cache import Cache
from repro.memsys.lazystate import LazyList, PerProcWords, TouchBitmap
from repro.memsys.wbuffer import make_write_buffer, wbuffer_extras


class SoftwareBypassScheme(CoherenceScheme):
    name = "sc"
    batch_hot_rule = "written"
    # Invalidation is index-driven (no timetags, no leases) and there is
    # no directory.
    config_dead_fields = ("tpi", "directory", "tardis")

    def __init__(self, ctx: SimContext):
        super().__init__(ctx)
        machine = self.machine
        self.caches: LazyList = LazyList(machine.n_procs,
                                         lambda _p: Cache(machine.cache))
        self.wbuffers = LazyList(
            machine.n_procs,
            lambda _p: make_write_buffer(machine.write_buffer))
        self.line_words = machine.cache.line_words
        self.touched = TouchBitmap(machine.n_procs, ctx.shadow.total_words)

    def end_epoch(self, write_key=None) -> Dict[int, int]:
        return PerProcWords(self.machine.n_procs,
                            {proc: wb.drain()
                             for proc, wb in self.wbuffers.materialized()})

    def release_fence(self, proc: int) -> AccessResult:
        words = self.wbuffers[proc].drain()
        return AccessResult(latency=self.network.control_latency() + words,
                            kind=MissKind.HIT, write_words=words)

    def extras(self) -> Dict[str, int]:
        return wbuffer_extras(self.wbuffers.materialized_items())

    def make_batch_kernel(self):
        from repro.coherence.batch import ScBatchKernel

        return ScBatchKernel.build(self)

    # -------------------------------------------------------------- accesses

    def read(self, proc: int, addr: int, site: int, shared: bool,
             in_critical: bool) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        mark = self.ctx.marking.sc_mark(site) if shared else RefMark.READ
        loc = cache.probe(line_addr)

        if mark is RefMark.TIME_READ or (shared and in_critical):
            # Bypass: fetch the word from memory, leave the cache alone.
            kind = self._classify_bypass(cache, loc, word, addr, proc)
            self.touched[proc, addr] = True
            version = self.shadow.read_version(addr)
            self._check_read_version(addr, version)
            return AccessResult(latency=self.network.word_latency(),
                                kind=kind, read_words=2, version=version)

        if loc is not None and cache.word_valid[loc.set_index, loc.way, word]:
            cache.touch(loc)
            version = int(cache.version[loc.set_index, loc.way, word])
            self._check_read_version(addr, version)
            return AccessResult(latency=self.machine.hit_latency,
                                kind=MissKind.HIT, version=version)

        kind = MissKind.REPLACEMENT if self.touched[proc, addr] else MissKind.COLD
        self.touched[proc, addr] = True
        new_loc = self._fill(cache, line_addr)
        version = int(cache.version[new_loc.set_index, new_loc.way, word])
        self._check_read_version(addr, version)
        return AccessResult(latency=self.network.miss_latency(self.line_words),
                            kind=kind, read_words=1 + self.line_words,
                            version=version)

    def write(self, proc: int, addr: int, site: int, shared: bool,
              in_critical: bool) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        read_words = 0
        if loc is None:
            loc = self._fill(cache, line_addr)
            read_words = 1 + self.line_words
        s, w = loc.set_index, loc.way
        version = self.shadow.write(addr, proc)
        cache.word_valid[s, w, word] = True
        cache.version[s, w, word] = version
        cache.touch(loc)
        self.touched[proc, addr] = True
        write_words = self.wbuffers[proc].note_write(addr) if shared else 0
        latency = self.machine.hit_latency
        if (shared
                and self.machine.consistency is ConsistencyModel.SEQUENTIAL):
            latency = self.network.word_latency()
        return AccessResult(latency=latency, kind=MissKind.HIT,
                            read_words=read_words, write_words=write_words,
                            version=version)

    # --------------------------------------------------------------- helpers

    def _fill(self, cache: Cache, line_addr: int):
        loc, _evicted, _dirty = cache.install(line_addr)
        s, w = loc.set_index, loc.way
        base = cache.line_base(line_addr)
        cache.version[s, w, :] = self.shadow.version[base:base + self.line_words]
        return loc

    def _classify_bypass(self, cache: Cache, loc, word: int, addr: int,
                         proc: int) -> MissKind:
        """Was this forced memory access avoidable?"""
        if loc is not None and cache.word_valid[loc.set_index, loc.way, word]:
            cached = int(cache.version[loc.set_index, loc.way, word])
            if cached == self.shadow.read_version(addr):
                return MissKind.CONSERVATIVE
            return MissKind.TRUE_SHARING
        if self.touched[proc, addr]:
            return MissKind.REPLACEMENT
        return MissKind.COLD
