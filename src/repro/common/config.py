"""Machine and simulation configuration.

The default values reproduce Figure 8 of the paper ("Cache and system
organization / Latency" table): a Cray T3D-like multiprocessor with 16
single-issue processors, a 64 KB direct-mapped lock-up free data cache per
node, 4-word (32-bit) cache lines, 1-cycle hits, a 100-cycle base miss
latency, an 8-bit timetag, a 128-cycle two-phase reset, and network delays
from the Kruskal-Snir analytic model for indirect multistage networks.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError

WORD_BYTES = 4
"""All addresses in the simulator are 32-bit-word addresses."""

DEFAULT_MAX_PROCS = 65536
"""Upper bound on ``MachineConfig.n_procs`` (the scaling study tops out at
16384; the default cap leaves 4x headroom).  A typo like ``n_procs=10**9``
would otherwise OOM allocating private-array address space long after
configuration time; raise the cap explicitly with the ``REPRO_MAX_PROCS``
environment variable when a larger machine is really intended."""


def max_procs() -> int:
    """The effective ``n_procs`` cap (``REPRO_MAX_PROCS`` overrides)."""
    import os

    raw = os.environ.get("REPRO_MAX_PROCS", "")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ConfigError(
                f"REPRO_MAX_PROCS must be an integer, got {raw!r}") from None
        if value > 0:
            return value
    return DEFAULT_MAX_PROCS


class WriteBufferKind(enum.Enum):
    """Write-buffer organizations studied by the paper.

    ``FIFO`` models an ordinary (infinite) write buffer: it hides write
    latency but every buffered write still reaches memory.  ``COALESCING``
    models the buffer "organized as a cache" (DEC Alpha 21164 style, [9, 10]),
    which merges repeated writes to the same word between synchronization
    points and therefore removes redundant write traffic.
    """

    FIFO = "fifo"
    COALESCING = "coalescing"


class SchedulePolicy(enum.Enum):
    """How DOALL iterations are assigned to processors."""

    CHUNK = "chunk"  # contiguous blocks of iterations per processor
    INTERLEAVED = "interleaved"  # iteration i -> processor i mod P
    SELF = "self"  # dynamic self-scheduling (round-robin arrival order)


class TimetagResetPolicy(enum.Enum):
    """What the TPI hardware does when the epoch counter wraps a phase."""

    TWO_PHASE = "two_phase"  # invalidate only out-of-phase words (the paper)
    FLUSH = "flush"  # invalidate the whole cache (the naive strategy)


class ConsistencyModel(enum.Enum):
    """Memory consistency model (the paper's footnote-11 ablation).

    Under ``WEAK`` (the paper's default for all schemes) writes are buffered
    and never stall the processor; ordering is enforced only at epoch
    barriers and lock operations.  Under ``SEQUENTIAL`` every write stalls
    until globally performed — the write-through schemes pay a full memory
    round trip per write, and the directory pays for ownership acquisition
    on the critical path.  The paper notes the directory's coherence-
    transaction problem "would be much more significant in a sequential
    consistency model since both reads and writes are affected".
    """

    WEAK = "weak"
    SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a per-node data cache."""

    size_bytes: int = 64 * 1024
    line_words: int = 4
    associativity: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_words <= 0 or self.associativity <= 0:
            raise ConfigError("cache parameters must be positive")
        if self.size_bytes % self.line_bytes:
            raise ConfigError("cache size must be a multiple of the line size")
        if self.n_lines % self.associativity:
            raise ConfigError("line count must be a multiple of associativity")
        if self.n_sets & (self.n_sets - 1):
            raise ConfigError("number of sets must be a power of two")

    @property
    def line_bytes(self) -> int:
        return self.line_words * WORD_BYTES

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity


@dataclass(frozen=True)
class TpiConfig:
    """Two-Phase Invalidation hardware parameters.

    ``tag_per_word=False`` selects the cheaper per-*line* timetag layout
    (8*C*P bits instead of Figure 5's 8*L*C*P).  A line tag can only
    soundly record the line's *fill* time (the minimum validation time of
    its words — local word writes cannot raise it, and strict Time-Reads
    can never hit), so the variant loses the producer-consumer reuse the
    per-word design buys; ``fig25_taggranularity`` measures the cost.
    """

    timetag_bits: int = 8
    reset_policy: TimetagResetPolicy = TimetagResetPolicy.TWO_PHASE
    reset_stall_cycles: int = 128
    tag_per_word: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.timetag_bits <= 16:
            raise ConfigError("timetag width must be between 1 and 16 bits")
        if self.reset_stall_cycles < 0:
            raise ConfigError("reset stall must be non-negative")

    @property
    def counter_modulus(self) -> int:
        return 1 << self.timetag_bits

    @property
    def phase_size(self) -> int:
        """Epochs per phase; the reset fires each time a phase boundary is crossed."""
        return 1 << (self.timetag_bits - 1)


@dataclass(frozen=True)
class TardisConfig:
    """Tardis timestamp-coherence parameters (PAPERS.md, Tardis 2.0).

    ``lease`` is the number of logical-timestamp units a read lease
    extends past the reader's ``pts``; ``timestamp_bits`` bounds the
    hardware counters, modeled by rebasing (timestamp compression) —
    the lease must fit in half the counter window so live leases stay
    representable across a rebase (see
    :func:`repro.coherence.tardis_rules.rebase_base`).
    """

    lease: int = 8
    timestamp_bits: int = 8

    def __post_init__(self) -> None:
        if not 2 <= self.timestamp_bits <= 16:
            raise ConfigError("timestamp width must be between 2 and 16 bits")
        if not 1 <= self.lease <= (1 << (self.timestamp_bits - 1)) - 1:
            raise ConfigError("lease must lie in [1, 2^(bits-1) - 1]")

    @property
    def modulus(self) -> int:
        return 1 << self.timestamp_bits


@dataclass(frozen=True)
class DirectoryConfig:
    """Hardware directory parameters (full-map MSI, and LimitLess DIR_i)."""

    limitless_pointers: int = 10
    overflow_trap_cycles: int = 50

    def __post_init__(self) -> None:
        if self.limitless_pointers <= 0:
            raise ConfigError("LimitLess pointer count must be positive")
        if self.overflow_trap_cycles < 0:
            raise ConfigError("overflow trap cost must be non-negative")


@dataclass(frozen=True)
class NetworkConfig:
    """Kruskal-Snir analytic model of a buffered multistage network [24].

    The per-stage queueing delay under offered load ``rho`` (flits per link
    per cycle) for k-by-k switches is ``rho * (1 - 1/k) / (2 * (1 - rho))``
    switch cycles, added to the unit switch traversal time.  Misses traverse
    the network twice (request + reply); the reply carries the cache line,
    serialized at ``word_transfer_cycles`` per word through the memory port.
    """

    switch_degree: int = 4
    switch_cycle: int = 2
    word_transfer_cycles: int = 8
    max_load: float = 0.95

    def __post_init__(self) -> None:
        if self.switch_degree < 2:
            raise ConfigError("switch degree must be at least 2")
        if not 0.0 < self.max_load < 1.0:
            raise ConfigError("max_load must lie strictly between 0 and 1")

    def stages(self, n_procs: int) -> int:
        return max(1, math.ceil(math.log(max(2, n_procs), self.switch_degree)))


@dataclass(frozen=True)
class MachineConfig:
    """The complete target machine (Figure 8 defaults)."""

    n_procs: int = 16
    cache: CacheConfig = field(default_factory=CacheConfig)
    tpi: TpiConfig = field(default_factory=TpiConfig)
    tardis: TardisConfig = field(default_factory=TardisConfig)
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    hit_latency: int = 1
    base_miss_latency: int = 100
    write_buffer: WriteBufferKind = WriteBufferKind.FIFO
    consistency: ConsistencyModel = ConsistencyModel.WEAK
    schedule: SchedulePolicy = SchedulePolicy.CHUNK
    epoch_setup_cycles: int = 60
    task_dispatch_cycles: int = 10
    network_smoothing: float = 0.5
    check_coherence: bool = True
    record_epochs: bool = False
    engine: str = "auto"
    """Simulation engine: ``"fast"`` (batched kernel), ``"gang"`` (batched
    kernel sharing trace-static analyses across the back-end variants of a
    sweep group), ``"reference"`` (per-event heap loop), or ``"auto"``
    (the ``REPRO_ENGINE`` environment variable, else fast).  The engines
    are differentially tested to be bit-identical, so this knob affects
    wall-clock only — it is therefore excluded from runtime job
    fingerprints."""
    jit: str = "auto"
    """Compiled (numba) kernel tier for the batched engines: ``"on"``
    (compile the batch scan kernels, falling back cleanly when numba is
    absent or the workload is unsupported), ``"off"``, ``"interp"`` (run
    the very same kernel loops uncompiled — the differential-testing
    tier), or ``"auto"`` (the ``REPRO_JIT`` environment variable, else
    off).  Like ``engine``, the tier is differentially tested to be
    bit-identical and is excluded from runtime job fingerprints."""

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ConfigError("processor count must be positive")
        cap = max_procs()
        if self.n_procs > cap:
            raise ConfigError(
                f"n_procs={self.n_procs} exceeds the cap of {cap}; set "
                f"REPRO_MAX_PROCS to raise it")
        if self.hit_latency <= 0 or self.base_miss_latency <= 0:
            raise ConfigError("latencies must be positive")
        if not 0.0 <= self.network_smoothing <= 1.0:
            raise ConfigError("network smoothing must lie in [0, 1]")
        if self.engine not in ("auto", "fast", "gang", "reference"):
            raise ConfigError(f"unknown engine {self.engine!r}; "
                              f"choose auto, fast, gang, or reference")
        if self.jit not in ("auto", "on", "off", "interp"):
            raise ConfigError(f"unknown jit tier {self.jit!r}; "
                              f"choose auto, on, off, or interp")

    def with_(self, **changes) -> "MachineConfig":
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)


def default_machine() -> MachineConfig:
    """The paper's default configuration (Figure 8)."""
    return MachineConfig()


def parameter_table(machine: MachineConfig) -> list[tuple[str, str]]:
    """Render the Figure 8 parameter table for a configuration.

    Returns ``(parameter, value)`` rows matching the layout of the paper's
    default-parameters figure.
    """
    cache = machine.cache
    tpi = machine.tpi
    return [
        ("CPU", "single-issue processor"),
        ("ALU operations", "1 CPU cycle"),
        ("cache size", f"{cache.size_bytes // 1024} KB, "
                       f"{'direct-mapped' if cache.associativity == 1 else f'{cache.associativity}-way'}"),
        ("cache hit", f"{machine.hit_latency} CPU cycle"),
        ("line size", f"{cache.line_words} 32-bit word"),
        ("cache line base miss latency", f"{machine.base_miss_latency} CPU cycles"),
        ("timetag size", f"{tpi.timetag_bits}-bits"),
        ("network delay", "analytic model [24]"),
        ("number of processors", str(machine.n_procs)),
        ("two-phase reset", f"{tpi.reset_stall_cycles} cycles"),
    ]
