"""Shared infrastructure: configuration, statistics, errors."""

from repro.common.config import (
    CacheConfig,
    ConsistencyModel,
    DirectoryConfig,
    MachineConfig,
    NetworkConfig,
    SchedulePolicy,
    TpiConfig,
    WriteBufferKind,
    default_machine,
)
from repro.common.errors import (
    CompilationError,
    ConfigError,
    ProtocolError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.common.stats import Counter, MissKind, TrafficClass, percentile

__all__ = [
    "CacheConfig",
    "ConsistencyModel",
    "CompilationError",
    "ConfigError",
    "Counter",
    "DirectoryConfig",
    "MachineConfig",
    "MissKind",
    "NetworkConfig",
    "ProtocolError",
    "ReproError",
    "SchedulePolicy",
    "SimulationError",
    "TpiConfig",
    "TrafficClass",
    "ValidationError",
    "WriteBufferKind",
    "default_machine",
    "percentile",
]
