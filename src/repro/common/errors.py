"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid machine / scheme / simulation configuration."""


class ValidationError(ReproError):
    """A structurally invalid IR program (bad ranks, unknown symbols, ...)."""


class CompilationError(ReproError):
    """A failure inside the compiler analyses (e.g. unsupported recursion)."""


class SimulationError(ReproError):
    """An inconsistency detected while simulating a trace."""


class ProtocolError(SimulationError):
    """A coherence-protocol invariant was violated during simulation.

    This is always a bug in a scheme implementation, never a user error;
    the simulator checks protocol invariants continuously.
    """
