"""Counters and classification enums shared across the simulator."""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import List


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a sample list.

    The single implementation shared by the serve telemetry and the serve
    benchmark harness, so both report identical latency quantiles.  Returns
    0.0 for an empty sample.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class MissKind(enum.Enum):
    """Why a cache access missed (or why a shared access went remote).

    ``TRUE_SHARING`` misses are necessary to maintain coherence; the two
    ``UNNECESSARY_*`` kinds are the avoidable ones the paper compares:
    hardware directories suffer false sharing on multi-word lines, while the
    compiler-directed schemes suffer from conservative compile-time marking.
    """

    HIT = "hit"
    COLD = "cold"
    REPLACEMENT = "replacement"  # capacity / conflict
    TRUE_SHARING = "true_sharing"
    FALSE_SHARING = "false_sharing"  # HW: Tullsen-Eggers classification
    CONSERVATIVE = "conservative"  # TPI/SC: compiler was conservative
    RESET = "reset"  # TPI: invalidated by a two-phase reset
    UNCACHED = "uncached"  # BASE: shared data is never cached

    @property
    def is_miss(self) -> bool:
        return self is not MissKind.HIT

    @property
    def is_unnecessary(self) -> bool:
        """Misses that a perfect oracle would have avoided."""
        return self in (MissKind.FALSE_SHARING, MissKind.CONSERVATIVE)


class TrafficClass(enum.Enum):
    """Network traffic categories (read / write / coherence), in flits."""

    READ = "read"
    WRITE = "write"
    COHERENCE = "coherence"


@dataclass
class Counter:
    """A bundle of named integer counters with dict-like convenience.

    >>> c = Counter()
    >>> c.add("reads", 2); c.add("reads")
    >>> c["reads"]
    3
    """

    values: dict = field(default_factory=lambda: defaultdict(int))

    def add(self, name: str, amount: int = 1) -> None:
        self.values[name] += amount

    def __getitem__(self, name: str) -> int:
        return self.values.get(name, 0)

    def merge(self, other: "Counter") -> None:
        for name, amount in other.values.items():
            self.values[name] += amount

    def as_dict(self) -> dict:
        return dict(self.values)

    def total(self, prefix: str = "") -> int:
        return sum(v for k, v in self.values.items() if k.startswith(prefix))
