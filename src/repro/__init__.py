"""repro — reproduction of Choi & Yew (ISCA 1996): compiler and hardware
support for cache coherence in large-scale multiprocessors.

The package implements the Two-Phase Invalidation (TPI) hardware-supported
compiler-directed coherence scheme end to end: a parallel-program IR, the
Polaris-style compiler analyses (epochs, regular sections, dependence
tests, interprocedural MOD/USE, Time-Read marking), an execution-driven
multiprocessor simulator with four coherence schemes (BASE, SC, TPI,
full-map directory, plus LimitLess), six Perfect-Club-like workloads, and
a harness reproducing every table and figure of the paper's evaluation.

Quick start::

    from repro import build_workload, default_machine, prepare, simulate_all

    run = prepare(build_workload("ocean"), default_machine())
    for scheme, result in simulate_all(run).items():
        print(result.summary())
"""

from repro.common.config import (
    CacheConfig,
    DirectoryConfig,
    MachineConfig,
    NetworkConfig,
    SchedulePolicy,
    TpiConfig,
    WriteBufferKind,
    default_machine,
)
from repro.common.errors import ReproError
from repro.common.stats import MissKind, TrafficClass
from repro.compiler import InterprocMode, Marking, MarkingOptions, RefMark, mark_program
from repro.experiments import experiment_ids, run_all, run_experiment
from repro.ir import ProgramBuilder
from repro.runtime import (
    ArtifactCache,
    Job,
    ParallelExecutor,
    Telemetry,
    execute_jobs,
)
from repro.sim import PreparedRun, SimResult, prepare, simulate, simulate_all
from repro.trace import ColumnarTrace, MigrationSpec, generate_columnar, generate_trace
from repro.workloads import build_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "ArtifactCache",
    "CacheConfig",
    "ColumnarTrace",
    "DirectoryConfig",
    "InterprocMode",
    "Job",
    "MachineConfig",
    "Marking",
    "MarkingOptions",
    "MigrationSpec",
    "MissKind",
    "NetworkConfig",
    "ParallelExecutor",
    "PreparedRun",
    "ProgramBuilder",
    "RefMark",
    "ReproError",
    "SchedulePolicy",
    "SimResult",
    "Telemetry",
    "TpiConfig",
    "TrafficClass",
    "WriteBufferKind",
    "build_workload",
    "default_machine",
    "execute_jobs",
    "experiment_ids",
    "generate_columnar",
    "generate_trace",
    "mark_program",
    "prepare",
    "run_all",
    "run_experiment",
    "simulate",
    "simulate_all",
    "workload_names",
]
