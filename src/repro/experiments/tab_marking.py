"""Compiler marking statistics per benchmark (the compiler-side table).

Reports, per workload, the fraction of read sites marked Time-Read under
the three interprocedural modes — quantifying what the paper's
interprocedural analysis buys over procedure-boundary invalidation — plus
the *dynamic* picture from simulation: what fraction of executed reads
were Time-Reads, and how often the timetag hardware satisfied them from
the cache anyway (the runtime locality the static marking cannot see).
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig
from repro.compiler.report import marking_report
from repro.experiments.common import Bench, ExperimentResult
from repro.workloads import build_workload, workload_names


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    preset = "small" if size == "small" else "default"
    bench = Bench(machine, size)
    result = ExperimentResult(
        experiment="tab_marking",
        title="Time-Read marking: static fractions by analysis mode, dynamic hit rate",
        headers=["workload", "read sites", "inline %", "summary %", "none %",
                 "dyn TR %", "TR hit %"],
    )
    for name in workload_names():
        program = build_workload(name, size=preset)
        report = marking_report(program)
        inline = report["inline"]
        sim = bench.result(name, "tpi")
        time_reads = sim.extra.get("time_reads", 0)
        hits = sim.extra.get("time_read_hits", 0)
        result.rows.append([
            name,
            inline.read_sites,
            100.0 * inline.time_read_fraction_tpi,
            100.0 * report["summary"].time_read_fraction_tpi,
            100.0 * report["none"].time_read_fraction_tpi,
            100.0 * time_reads / max(1, sim.reads),
            100.0 * hits / max(1, time_reads),
        ])
    result.notes = ("shape: inline <= summary <= none (static); dynamically "
                    "the timetag hardware satisfies a large share of "
                    "Time-Reads from the cache — the locality that the "
                    "bypass scheme SC throws away.")
    return result
