"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment module exposes ``run(machine=None, size="paper") ->
ExperimentResult``; the result carries the table the paper's corresponding
figure reports (same rows/series), plus free-form notes recording the
shape claims being reproduced.  ``size="small"`` shrinks the workloads for
fast tests; ``"paper"`` uses the evaluation sizes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import MachineConfig, default_machine
from repro.sim import PreparedRun, prepare, simulate
from repro.sim.metrics import SimResult
from repro.workloads import build_workload, workload_names

DEFAULT_SCHEMES = ("base", "sc", "tpi", "hw")


@dataclass
class ExperimentResult:
    """One reproduced table/figure."""

    experiment: str
    title: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        widths = [len(str(h)) for h in self.headers]
        formatted_rows = []
        for row in self.rows:
            cells = [self._cell(value) for value in row]
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
            formatted_rows.append(cells)
        def line(cells):
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
        out = [f"== {self.experiment}: {self.title}",
               line([str(h) for h in self.headers]),
               line(["-" * w for w in widths])]
        out.extend(line(cells) for cells in formatted_rows)
        if self.notes:
            out.append(self.notes.rstrip())
        return "\n".join(out)

    @staticmethod
    def _cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
        return str(value)

    def to_dict(self) -> Dict:
        return {"experiment": self.experiment, "title": self.title,
                "headers": list(self.headers),
                "rows": [list(row) for row in self.rows],
                "notes": self.notes}

    @staticmethod
    def from_dict(data: Dict) -> "ExperimentResult":
        return ExperimentResult(experiment=data["experiment"],
                                title=data["title"],
                                headers=list(data["headers"]),
                                rows=[list(row) for row in data["rows"]],
                                notes=data.get("notes", ""))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @staticmethod
    def load(path: str) -> "ExperimentResult":
        with open(path) as handle:
            return ExperimentResult.from_dict(json.load(handle))

    def render_bars(self, value_header: str, width: int = 46) -> str:
        """Horizontal ASCII bar chart of one numeric column.

        Rows are labelled by their leading non-numeric cells; bars scale to
        the column maximum.  Handy for eyeballing a figure in a terminal::

            print(result.render_bars("TPI"))
        """
        index = self.headers.index(value_header)
        labels = []
        values = []
        for row in self.rows:
            label = " ".join(str(cell) for cell in row[:index]
                             if not isinstance(cell, float))
            value = row[index]
            if not isinstance(value, (int, float)):
                raise ValueError(f"column {value_header!r} is not numeric")
            labels.append(label)
            values.append(float(value))
        peak = max((abs(v) for v in values), default=0.0) or 1.0
        label_w = max((len(l) for l in labels), default=0)
        out = [f"== {self.experiment}: {value_header}"]
        for label, value in zip(labels, values):
            bar = "#" * max(0, round(width * abs(value) / peak))
            out.append(f"{label.rjust(label_w)} |{bar} {self._cell(value)}")
        return "\n".join(out)

    def column(self, header: str) -> List:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def cell(self, row_key, header: str):
        """Value at (first column == row_key, header)."""
        index = self.headers.index(header)
        for row in self.rows:
            if row[0] == row_key:
                return row[index]
        raise KeyError(f"no row {row_key!r} in experiment {self.experiment}")


class Bench:
    """Prepares workloads once per (front end, size) and simulates on demand.

    When a :func:`repro.runtime.session` is active, simulations route
    through its executor: the first request for a scheme fetches it for
    *every* workload in one batch (fanned out across worker processes when
    the session is parallel), and the session's artifact cache makes
    repeat invocations near-free.  Without a session, behavior is the
    original direct in-process path.

    ``gang`` declares the back-end machine variants an experiment sweeps
    over (cache geometry, timetag width, write buffer — anything outside
    ``n_procs``/``schedule``).  All variants share one prepared front end
    per workload (prepares are keyed by front-end identity), requests for
    any variant batch the *whole* gang in one executor call, and the
    direct path gang-primes the shared trace before simulating
    (:func:`repro.sim.gang.prime_group`).
    """

    def __init__(self, machine: Optional[MachineConfig] = None,
                 size: str = "paper", workloads: Optional[Sequence[str]] = None,
                 gang: Sequence[MachineConfig] = ()):
        self.machine = machine or default_machine()
        self.size = "small" if size == "small" else "default"
        self.names = list(workloads) if workloads else workload_names()
        self.gang = list(gang)
        self._programs: Dict[str, object] = {}
        self._prepared: Dict[Tuple[str, int, str], PreparedRun] = {}
        self._results: Dict[Tuple[str, str, int], SimResult] = {}
        self._primed: set = set()
        # Front ends built by a session executor, keyed by prepare
        # fingerprint; handed back on later batches so one compile/trace
        # feeds every scheme (the executor fills it in-process).
        self._front_ends: Dict[str, PreparedRun] = {}

    def _program(self, name: str):
        if name not in self._programs:
            self._programs[name] = build_workload(name, size=self.size)
        return self._programs[name]

    def prepared(self, name: str,
                 machine: Optional[MachineConfig] = None) -> PreparedRun:
        machine = machine or self.machine
        # Keyed by the front-end half of the machine: every back-end
        # variant (gang member) reuses the same compile + trace.
        key = (name, machine.n_procs, machine.schedule)
        if key not in self._prepared:
            self._prepared[key] = prepare(self._program(name), machine)
        return self._prepared[key]

    def result(self, name: str, scheme: str,
               machine: Optional[MachineConfig] = None) -> SimResult:
        machine = machine or self.machine
        key = (name, scheme, id(machine))
        if key in self._results:
            return self._results[key]
        from repro.runtime import current_session

        session = current_session()
        if session is None:
            run = self.prepared(name, machine)
            self._prime(name, run)
            self._results[key] = simulate(run, scheme, machine=machine)
        else:
            self._fetch_batch(name, scheme, machine, session)
        return self._results[key]

    def _gang_machines(self, machine: MachineConfig) -> List[MachineConfig]:
        """The machines to batch together with ``machine``."""
        if any(m is machine for m in self.gang):
            return self.gang
        return [machine]

    def _prime(self, name: str, run: PreparedRun) -> None:
        """Gang-prime a workload's shared trace once (direct path)."""
        if name in self._primed:
            return
        self._primed.add(name)
        if len(self.gang) >= 2:
            from repro.sim.engine import resolve_engine
            from repro.sim.gang import prime_group

            members = [m for m in self.gang
                       if resolve_engine(m) != "reference"]
            if len(members) >= 2:
                prime_group(run.trace, members)

    def _fetch_batch(self, name: str, scheme: str, machine: MachineConfig,
                     session) -> None:
        """Fetch one scheme for every still-missing workload in one batch.

        When ``machine`` is a gang member, the batch covers the whole
        gang: (workloads x variants) land in one executor run, whose
        grouping puts every variant of a workload on one shared trace.
        """
        from repro.runtime import Job

        machines = self._gang_machines(machine)
        missing = [n for n in self.names
                   if (n, scheme, id(machine)) not in self._results]
        if name not in missing:
            missing.append(name)
        cells = [(n, m) for n in missing for m in machines]
        jobs = [Job(program=self._program(n), scheme=scheme, machine=m)
                for n, m in cells]
        for (n, m), result in zip(cells, session.run(
                jobs, prepared=self._front_ends)):
            self._results[(n, scheme, id(m))] = result
