"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment module exposes ``run(machine=None, size="paper") ->
ExperimentResult``; the result carries the table the paper's corresponding
figure reports (same rows/series), plus free-form notes recording the
shape claims being reproduced.  ``size="small"`` shrinks the workloads for
fast tests; ``"paper"`` uses the evaluation sizes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import MachineConfig, default_machine
from repro.sim import PreparedRun, prepare, simulate
from repro.sim.metrics import SimResult
from repro.workloads import build_workload, workload_names

DEFAULT_SCHEMES = ("base", "sc", "tpi", "hw")


@dataclass
class ExperimentResult:
    """One reproduced table/figure."""

    experiment: str
    title: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        widths = [len(str(h)) for h in self.headers]
        formatted_rows = []
        for row in self.rows:
            cells = [self._cell(value) for value in row]
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
            formatted_rows.append(cells)
        def line(cells):
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
        out = [f"== {self.experiment}: {self.title}",
               line([str(h) for h in self.headers]),
               line(["-" * w for w in widths])]
        out.extend(line(cells) for cells in formatted_rows)
        if self.notes:
            out.append(self.notes.rstrip())
        return "\n".join(out)

    @staticmethod
    def _cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
        return str(value)

    def to_dict(self) -> Dict:
        return {"experiment": self.experiment, "title": self.title,
                "headers": list(self.headers),
                "rows": [list(row) for row in self.rows],
                "notes": self.notes}

    @staticmethod
    def from_dict(data: Dict) -> "ExperimentResult":
        return ExperimentResult(experiment=data["experiment"],
                                title=data["title"],
                                headers=list(data["headers"]),
                                rows=[list(row) for row in data["rows"]],
                                notes=data.get("notes", ""))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @staticmethod
    def load(path: str) -> "ExperimentResult":
        with open(path) as handle:
            return ExperimentResult.from_dict(json.load(handle))

    def render_bars(self, value_header: str, width: int = 46) -> str:
        """Horizontal ASCII bar chart of one numeric column.

        Rows are labelled by their leading non-numeric cells; bars scale to
        the column maximum.  Handy for eyeballing a figure in a terminal::

            print(result.render_bars("TPI"))
        """
        index = self.headers.index(value_header)
        labels = []
        values = []
        for row in self.rows:
            label = " ".join(str(cell) for cell in row[:index]
                             if not isinstance(cell, float))
            value = row[index]
            if not isinstance(value, (int, float)):
                raise ValueError(f"column {value_header!r} is not numeric")
            labels.append(label)
            values.append(float(value))
        peak = max((abs(v) for v in values), default=0.0) or 1.0
        label_w = max((len(l) for l in labels), default=0)
        out = [f"== {self.experiment}: {value_header}"]
        for label, value in zip(labels, values):
            bar = "#" * max(0, round(width * abs(value) / peak))
            out.append(f"{label.rjust(label_w)} |{bar} {self._cell(value)}")
        return "\n".join(out)

    def column(self, header: str) -> List:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def cell(self, row_key, header: str):
        """Value at (first column == row_key, header)."""
        index = self.headers.index(header)
        for row in self.rows:
            if row[0] == row_key:
                return row[index]
        raise KeyError(f"no row {row_key!r} in experiment {self.experiment}")


class Bench:
    """Prepares workloads once per (machine, size) and simulates on demand.

    When a :func:`repro.runtime.session` is active, simulations route
    through its executor: the first request for a scheme fetches it for
    *every* workload in one batch (fanned out across worker processes when
    the session is parallel), and the session's artifact cache makes
    repeat invocations near-free.  Without a session, behavior is the
    original direct in-process path.
    """

    def __init__(self, machine: Optional[MachineConfig] = None,
                 size: str = "paper", workloads: Optional[Sequence[str]] = None):
        self.machine = machine or default_machine()
        self.size = "small" if size == "small" else "default"
        self.names = list(workloads) if workloads else workload_names()
        self._programs: Dict[str, object] = {}
        self._prepared: Dict[Tuple[str, int], PreparedRun] = {}
        self._results: Dict[Tuple[str, str, int], SimResult] = {}
        # Front ends built by a session executor, keyed by prepare
        # fingerprint; handed back on later batches so one compile/trace
        # feeds every scheme (the executor fills it in-process).
        self._front_ends: Dict[str, PreparedRun] = {}

    def _program(self, name: str):
        if name not in self._programs:
            self._programs[name] = build_workload(name, size=self.size)
        return self._programs[name]

    def prepared(self, name: str,
                 machine: Optional[MachineConfig] = None) -> PreparedRun:
        machine = machine or self.machine
        key = (name, id(machine))
        if key not in self._prepared:
            self._prepared[key] = prepare(self._program(name), machine)
        return self._prepared[key]

    def result(self, name: str, scheme: str,
               machine: Optional[MachineConfig] = None) -> SimResult:
        machine = machine or self.machine
        key = (name, scheme, id(machine))
        if key in self._results:
            return self._results[key]
        from repro.runtime import current_session

        session = current_session()
        if session is None:
            self._results[key] = simulate(self.prepared(name, machine), scheme)
        else:
            self._fetch_batch(name, scheme, machine, session)
        return self._results[key]

    def _fetch_batch(self, name: str, scheme: str, machine: MachineConfig,
                     session) -> None:
        """Fetch one scheme for every still-missing workload in one batch."""
        from repro.runtime import Job

        missing = [n for n in self.names
                   if (n, scheme, id(machine)) not in self._results]
        if name not in missing:
            missing.append(name)
        jobs = [Job(program=self._program(n), scheme=scheme, machine=machine)
                for n in missing]
        for n, result in zip(missing, session.run(jobs,
                                                  prepared=self._front_ends)):
            self._results[(n, scheme, id(machine))] = result
