"""Experiment harnesses: one module per table/figure of the paper.

Usage::

    from repro.experiments import run_experiment, experiment_ids
    result = run_experiment("fig11_miss_rates", size="small")
    print(result.render())
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import MachineConfig
from repro.experiments import (
    cmp_coherence,
    fig5_storage,
    fig8_params,
    fig11_miss_rates,
    fig12_classification,
    fig13_traffic,
    fig14_exectime,
    fig15_timetag,
    fig16_linesize,
    fig17_wbuffer,
    fig18_migration,
    fig19_consistency,
    fig20_update,
    fig21_cache,
    fig22_breakdown,
    fig23_scaling,
    fig24_timeline,
    fig25_taggranularity,
    tab_latency,
    tab_marking,
)
from repro.experiments.common import Bench, ExperimentResult

EXPERIMENTS = {
    "fig5_storage": fig5_storage.run,
    "fig8_params": fig8_params.run,
    "tab_marking": tab_marking.run,
    "fig11_miss_rates": fig11_miss_rates.run,
    "fig12_classification": fig12_classification.run,
    "fig13_traffic": fig13_traffic.run,
    "tab_latency": tab_latency.run,
    "fig14_exectime": fig14_exectime.run,
    "fig15_timetag": fig15_timetag.run,
    "fig16_linesize": fig16_linesize.run,
    "fig17_wbuffer": fig17_wbuffer.run,
    "fig18_migration": fig18_migration.run,
    "fig19_consistency": fig19_consistency.run,
    "fig20_update": fig20_update.run,
    "fig21_cache": fig21_cache.run,
    "fig22_breakdown": fig22_breakdown.run,
    "fig23_scaling": fig23_scaling.run,
    "fig23_scaling_x": fig23_scaling.run_extended,
    "fig24_timeline": fig24_timeline.run,
    "fig25_taggranularity": fig25_taggranularity.run,
    "cmp_coherence": cmp_coherence.run,
}


def experiment_ids() -> List[str]:
    return list(EXPERIMENTS)


def _wants_runtime(jobs, cache, telemetry) -> bool:
    return jobs != 1 or cache is not None or telemetry is not None


def run_experiment(experiment: str, machine: Optional[MachineConfig] = None,
                   size: str = "paper", *, jobs: Optional[int] = 1,
                   cache=None, telemetry=None) -> ExperimentResult:
    """Regenerate one paper table/figure.

    ``jobs``/``cache``/``telemetry`` open a :func:`repro.runtime.session`
    around the experiment: its simulations fan out over ``jobs`` worker
    processes (``None``/``0`` = all cores) and reuse artifacts from the
    given :class:`repro.runtime.ArtifactCache`.  The defaults keep the
    original direct in-process path.
    """
    if experiment not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment!r}; "
                       f"choose from {sorted(EXPERIMENTS)}")
    if _wants_runtime(jobs, cache, telemetry):
        from repro.runtime import session

        with session(jobs=jobs, cache=cache, telemetry=telemetry):
            return EXPERIMENTS[experiment](machine=machine, size=size)
    return EXPERIMENTS[experiment](machine=machine, size=size)


def run_all(machine: Optional[MachineConfig] = None,
            size: str = "paper", *, jobs: Optional[int] = 1,
            cache=None, telemetry=None) -> Dict[str, ExperimentResult]:
    if _wants_runtime(jobs, cache, telemetry):
        from repro.runtime import session

        with session(jobs=jobs, cache=cache, telemetry=telemetry):
            return {name: run(machine=machine, size=size)
                    for name, run in EXPERIMENTS.items()}
    return {name: run(machine=machine, size=size)
            for name, run in EXPERIMENTS.items()}


__all__ = ["Bench", "EXPERIMENTS", "ExperimentResult", "experiment_ids",
           "run_all", "run_experiment"]
