"""The average-miss-latency table (verbatim numbers in the paper).

Paper values (cycles), 16-byte vs 64-byte lines:

    program   TPI 16B  TPI 64B   HW 16B   HW 64B
    SPEC77     136.2    356.3    136.4    355.5
    OCEAN      136.2    354.3    136.4    353.6
    FLO52      136.2    355.1    136.6    361.2
    QCD2       136.0    354.7    145.5    405.4
    TRFD       136.0    352.4    149.1    418.6

Shapes to reproduce: (a) TPI's latency is essentially workload-independent
(its misses are plain memory fetches); (b) HW matches TPI on
SPEC77/OCEAN/FLO52 but is visibly higher on QCD2 and TRFD, where directory
transactions (dirty-owner forwarding, invalidation storms) sit on the
miss path; (c) quadrupling the line size roughly multiplies latency by
~2.6 via the longer transfer and the heavier network load.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import CacheConfig, MachineConfig, default_machine
from repro.experiments.common import Bench, ExperimentResult

PAPER_VALUES = {
    ("spec77", "tpi", 4): 136.2, ("spec77", "tpi", 16): 356.3,
    ("spec77", "hw", 4): 136.4, ("spec77", "hw", 16): 355.5,
    ("ocean", "tpi", 4): 136.2, ("ocean", "tpi", 16): 354.3,
    ("ocean", "hw", 4): 136.4, ("ocean", "hw", 16): 353.6,
    ("flo52", "tpi", 4): 136.2, ("flo52", "tpi", 16): 355.1,
    ("flo52", "hw", 4): 136.6, ("flo52", "hw", 16): 361.2,
    ("qcd2", "tpi", 4): 136.0, ("qcd2", "tpi", 16): 354.7,
    ("qcd2", "hw", 4): 145.5, ("qcd2", "hw", 16): 405.4,
    ("trfd", "tpi", 4): 136.0, ("trfd", "tpi", 16): 352.4,
    ("trfd", "hw", 4): 149.1, ("trfd", "hw", 16): 418.6,
}


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    base = machine or default_machine()
    result = ExperimentResult(
        experiment="tab_latency",
        title="average miss latency (cycles), 16-byte vs 64-byte lines",
        headers=["workload", "TPI 16B", "TPI 64B", "HW 16B", "HW 64B",
                 "paper TPI 16B", "paper HW 64B"],
    )
    benches = {}
    for line_words in (4, 16):
        m = base.with_(cache=CacheConfig(size_bytes=base.cache.size_bytes,
                                         line_words=line_words,
                                         associativity=base.cache.associativity))
        benches[line_words] = Bench(m, size)
    for name in benches[4].names:
        row = [name]
        for scheme in ("tpi", "hw"):
            for line_words in (4, 16):
                r = benches[line_words].result(name, scheme)
                row.append(r.avg_miss_latency)
        row.append(PAPER_VALUES.get((name, "tpi", 4), float("nan")))
        row.append(PAPER_VALUES.get((name, "hw", 16), float("nan")))
        result.rows.append(row)
    result.notes = ("shape: TPI ~flat across workloads; HW elevated "
                    "wherever directory transactions sit on the miss path "
                    "(the paper's hot spots are QCD2/TRFD; our synthetic "
                    "kernels concentrate contention on FLO52/OCEAN "
                    "instead); 64-byte lines cost a multiple of the "
                    "16-byte latency.  Paper reference columns included "
                    "where the text quotes them (arc2d stands in for the "
                    "unnamed sixth benchmark).")
    return result
