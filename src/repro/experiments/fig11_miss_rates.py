"""Figure 11 — miss rates of each scheme on the six benchmarks.

The paper's figure shows, for a 64 KB direct-mapped cache, the read miss
rate of BASE, SC, TPI and the hardware directory on each benchmark; the
claim is that TPI's miss rates are comparable to the directory's while SC
and BASE are far worse.

The sweep axis here is the scheme, so the four cells per workload already
gang over one shared trace (the executor groups by front-end fingerprint
and scatters each group as one unit).
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig
from repro.experiments.common import Bench, DEFAULT_SCHEMES, ExperimentResult


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    bench = Bench(machine, size)
    result = ExperimentResult(
        experiment="fig11_miss_rates",
        title="read miss rate (%) per scheme, 64 KB direct-mapped cache",
        headers=["workload", *(s.upper() for s in DEFAULT_SCHEMES)],
    )
    for name in bench.names:
        row = [name]
        for scheme in DEFAULT_SCHEMES:
            row.append(100.0 * bench.result(name, scheme).miss_rate)
        result.rows.append(row)
    result.notes = ("shape: BASE >> SC > TPI >= HW on every benchmark; "
                    "TPI within a small factor of the full-map directory.")
    return result
