"""Line-size sweep — miss rates and the false-sharing effect.

Larger lines help both schemes through spatial locality until line-grained
coherence bites: the directory's false-sharing misses grow with the line
size, while TPI's per-word timetags are immune to false sharing (its
unnecessary misses stay compiler-induced and line-size-independent).
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import CacheConfig, MachineConfig, default_machine
from repro.common.stats import MissKind
from repro.experiments.common import Bench, ExperimentResult

LINE_WORDS = (1, 4, 8, 16)


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    base = machine or default_machine()
    result = ExperimentResult(
        experiment="fig16_linesize",
        title="miss rate (%) vs line size; HW false-sharing misses per 1000 reads",
        headers=["workload", "scheme",
                 *(f"{w * 4}B" for w in LINE_WORDS),
                 "false/1k @4B", "false/1k @64B"],
    )
    # Line size is back-end-only (traces use the fixed 4-word layout
    # alignment), so all four geometries gang over one trace per workload.
    machines = {w: base.with_(cache=CacheConfig(
        size_bytes=base.cache.size_bytes, line_words=w,
        associativity=base.cache.associativity)) for w in LINE_WORDS}
    bench = Bench(base, size, gang=list(machines.values()))
    for name in bench.names:
        for scheme in ("tpi", "hw"):
            row = [name, scheme.upper()]
            for w in LINE_WORDS:
                row.append(100.0 * bench.result(
                    name, scheme, machines[w]).miss_rate)
            for w in (1, 16):
                r = bench.result(name, scheme, machines[w])
                row.append(1000.0 * r.kind_count(MissKind.FALSE_SHARING)
                           / max(1, r.reads))
            result.rows.append(row)
    result.notes = ("shape: false sharing is zero at 1-word lines and grows "
                    "with line size for HW only; TPI has none at any size.")
    return result
