"""Consistency-model ablation (the paper's footnote 11).

"This problem would be much more significant in a sequential consistency
model since both reads and writes are affected."  Under sequential
consistency, every write stalls until globally performed: the write-through
compiler-directed schemes pay a memory round trip per shared write, and
the directory pays ownership acquisition on the critical path.  This
experiment measures the slowdown of switching WEAK -> SEQUENTIAL per
scheme — quantifying how much the weak model the paper assumes is doing
for each design.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import ConsistencyModel, MachineConfig, default_machine
from repro.experiments.common import Bench, ExperimentResult

SCHEMES = ("sc", "tpi", "hw")


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    base = machine or default_machine()
    weak = Bench(base.with_(consistency=ConsistencyModel.WEAK), size)
    seq = Bench(base.with_(consistency=ConsistencyModel.SEQUENTIAL), size)
    result = ExperimentResult(
        experiment="fig19_consistency",
        title="slowdown of sequential over weak consistency, per scheme",
        headers=["workload", *(f"{s.upper()} seq/weak" for s in SCHEMES)],
    )
    for name in weak.names:
        row = [name]
        for scheme in SCHEMES:
            w = weak.result(name, scheme).exec_cycles
            s = seq.result(name, scheme).exec_cycles
            row.append(s / w)
        result.rows.append(row)
    result.notes = ("shape: the write-through schemes (SC, TPI) suffer far "
                    "more than the write-back directory — every shared "
                    "write becomes a memory round trip; HW only stalls on "
                    "ownership changes.")
    return result
