"""Per-epoch timeline — network-load feedback made visible.

Records per-epoch profiles (``MachineConfig.record_epochs``) for one
workload and shows the simulation's feedback loop in action: the offered
network load builds up from the cold-start epochs, miss rates drop as the
caches warm, and the alternating parallel phases leave their signature in
the per-epoch traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig, default_machine
from repro.experiments.common import ExperimentResult
from repro.sim import prepare, simulate
from repro.workloads import build_workload

WORKLOAD = "ocean"
MAX_ROWS = 18


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    base = (machine or default_machine()).with_(record_epochs=True)
    preset = "small" if size == "small" else "default"
    program = build_workload(WORKLOAD, size=preset)
    run_ = prepare(program, base)
    tpi = simulate(run_, "tpi")
    hw = simulate(run_, "hw")

    result = ExperimentResult(
        experiment="fig24_timeline",
        title=f"per-epoch profile of {WORKLOAD}: miss rate and network load",
        headers=["epoch", "label", "TPI miss %", "TPI rho", "HW miss %",
                 "HW rho", "TPI cycles"],
    )
    records = list(zip(tpi.epoch_records, hw.epoch_records))
    step = max(1, len(records) // MAX_ROWS)
    for t_rec, h_rec in records[::step]:
        result.rows.append([
            t_rec.index,
            t_rec.label[:14],
            100.0 * t_rec.miss_rate,
            t_rec.network_load,
            100.0 * h_rec.miss_rate,
            h_rec.network_load,
            t_rec.cycles,
        ])
    result.notes = ("shape: each phase settles to a steady-state miss "
                    "rate after its first instances (cold phases like the "
                    "leapfrog drop to ~0); the network load estimate "
                    "tracks the phase structure — the execution-driven "
                    "feedback loop, observable.")
    return result
