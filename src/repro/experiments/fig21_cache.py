"""Cache geometry sweep — size and associativity.

The paper's evaluation fixes a 64 KB direct-mapped cache; this sweep shows
where that operating point sits.  The evaluation workload sizes have small
working sets, so this experiment enlarges each benchmark until its working
set exceeds the smaller caches (recorded in ``CAPACITY_SIZES``): the 16 KB
point then shows capacity misses, 256 KB holds everything, and the TPI/HW
*gap* stays put — it comes from sharing, not capacity.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.config import CacheConfig, MachineConfig, default_machine
from repro.experiments.common import ExperimentResult
from repro.sim import prepare, simulate
from repro.sim.engine import resolve_engine
from repro.sim.gang import prime_group
from repro.workloads import build_workload, workload_names

SIZES_KB = (16, 64, 256)

# Overrides that push each working set past the small cache sizes.
CAPACITY_SIZES: Dict[str, dict] = {
    "spec77": dict(nlat=24, nspec=512, steps=2),
    "ocean": dict(n=96, steps=2),
    "flo52": dict(n=16384, cycles=1),
    "qcd2": dict(nsite=16384, sweeps=1),
    "trfd": dict(n=48, m=8, passes=1),
    "arc2d": dict(n=96, steps=2),
}

SMALL_SIZES: Dict[str, dict] = {
    "spec77": dict(nlat=12, nspec=256, steps=1),
    "ocean": dict(n=48, steps=1),
    "flo52": dict(n=4096, cycles=1),
    "qcd2": dict(nsite=4096, sweeps=1),
    "trfd": dict(n=24, m=6, passes=1),
    "arc2d": dict(n=48, steps=1),
}


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    base = machine or default_machine()
    overrides = CAPACITY_SIZES if size == "paper" else SMALL_SIZES
    result = ExperimentResult(
        experiment="fig21_cache",
        title="miss rate (%) vs cache size and associativity (enlarged working sets)",
        headers=["workload", "scheme",
                 *(f"{kb}KB dm" for kb in SIZES_KB), "64KB 4-way"],
    )
    machines = {}
    for kb in SIZES_KB:
        machines[(kb, 1)] = base.with_(cache=CacheConfig(
            size_bytes=kb * 1024, line_words=base.cache.line_words))
    machines[(64, 4)] = base.with_(cache=CacheConfig(
        size_bytes=64 * 1024, line_words=base.cache.line_words,
        associativity=4))

    for name in workload_names():
        program = build_workload(name, **overrides[name])
        # Cache geometry is back-end-only: one prepare serves all four
        # machines, gang-primed so the geometry resolution is shared.
        run = prepare(program, base)
        members = [m for m in machines.values()
                   if resolve_engine(m) != "reference"]
        if len(members) >= 2:
            prime_group(run.trace, members)
        for scheme in ("tpi", "hw"):
            row = [name, scheme.upper()]
            for kb in SIZES_KB:
                row.append(100.0 * simulate(run, scheme,
                                            machine=machines[(kb, 1)]).miss_rate)
            row.append(100.0 * simulate(run, scheme,
                                        machine=machines[(64, 4)]).miss_rate)
            result.rows.append(row)
    result.notes = ("shape: miss rate non-increasing in cache size, with a "
                    "visible capacity cliff between 16KB and 256KB on the "
                    "enlarged working sets; associativity never hurts; the "
                    "TPI-vs-HW gap persists at every size (sharing, not "
                    "capacity).")
    return result
