"""Tag granularity ablation — per-word vs per-line timetags.

Figure 5 charges TPI ``8*L*C*P`` bits of SRAM because every *word* carries
a timetag; a per-*line* tag would cost ``8*C*P`` (4x less at 4-word
lines).  But a line tag can only soundly record the line's fill time — a
word write cannot raise it (the other words stay old) and strict
Time-Reads can never hit — so the cheap layout forfeits exactly the
intra-line and producer-consumer reuse the per-word design buys.  This
experiment measures that price, justifying the paper's choice.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig, TpiConfig, default_machine
from repro.experiments.common import Bench, ExperimentResult
from repro.overhead.storage import tpi_overhead


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    base = machine or default_machine()
    word = Bench(base, size)
    line = Bench(base.with_(tpi=TpiConfig(
        timetag_bits=base.tpi.timetag_bits,
        reset_policy=base.tpi.reset_policy,
        reset_stall_cycles=base.tpi.reset_stall_cycles,
        tag_per_word=False)), size)
    result = ExperimentResult(
        experiment="fig25_taggranularity",
        title="TPI with per-word vs per-line timetags",
        headers=["workload", "per-word miss %", "per-line miss %",
                 "miss ratio", "per-word cycles", "per-line cycles",
                 "slowdown"],
    )
    for name in word.names:
        w = word.result(name, "tpi")
        l = line.result(name, "tpi")
        result.rows.append([
            name,
            100.0 * w.miss_rate,
            100.0 * l.miss_rate,
            l.miss_rate / max(w.miss_rate, 1e-9),
            w.exec_cycles,
            l.exec_cycles,
            l.exec_cycles / w.exec_cycles,
        ])
    sram_word = tpi_overhead(1024, 16 * 1024, 4).cache_sram_bits // (8 << 20)
    sram_line = tpi_overhead(1024, 16 * 1024, 1).cache_sram_bits // (8 << 20)
    result.notes = (f"shape: per-line tags cost {sram_line} MB SRAM vs "
                    f"{sram_word} MB per-word (P=1024), but raise the miss "
                    "rate on every benchmark (strict Time-Reads never hit; "
                    "producer-consumer and intra-line reuse are lost) — "
                    "the paper's 8*L*C*P layout earns its 4x tag storage.")
    return result
