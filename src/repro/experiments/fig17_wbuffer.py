"""Write-buffer organization ablation (the paper's TRFD fix).

The paper observes TRFD's redundant writes inflate TPI's network traffic
and notes that organizing the write buffer as a cache (Alpha 21164 style)
"can effectively eliminate" it.  This experiment measures write traffic
per access under the plain FIFO buffer vs the coalescing buffer, and the
fraction of writes merged.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig, WriteBufferKind, default_machine
from repro.common.stats import TrafficClass
from repro.experiments.common import Bench, ExperimentResult


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    base = machine or default_machine()
    # The write-buffer organization is back-end-only: both variants gang
    # over one shared trace per workload.
    fifo_m = base.with_(write_buffer=WriteBufferKind.FIFO)
    coal_m = base.with_(write_buffer=WriteBufferKind.COALESCING)
    bench = Bench(base, size, gang=[fifo_m, coal_m])
    result = ExperimentResult(
        experiment="fig17_wbuffer",
        title="TPI write traffic: FIFO vs coalescing write buffer",
        headers=["workload", "FIFO words/access", "coalescing words/access",
                 "reduction %", "writes merged %"],
    )
    for name in bench.names:
        f = bench.result(name, "tpi", fifo_m)
        c = bench.result(name, "tpi", coal_m)
        accesses = max(1, f.reads + f.writes)
        f_words = f.traffic.get(TrafficClass.WRITE, 0) / accesses
        c_words = c.traffic.get(TrafficClass.WRITE, 0) / accesses
        merged = c.extra.get("merged_writes", 0)
        total = max(1, c.extra.get("buffered_writes", 1))
        result.rows.append([
            name, f_words, c_words,
            100.0 * (1.0 - c_words / f_words) if f_words else 0.0,
            100.0 * merged / total,
        ])
    result.notes = ("shape: the coalescing buffer removes most write "
                    "traffic on TRFD (the accumulation chains) and a "
                    "smaller share elsewhere.")
    return result
