"""Network traffic breakdown — read / write / coherence words per scheme.

The paper: TPI's write-through policy produces more write traffic than the
directory's write-back (dramatically so on TRFD, where redundant writes
dominate); the directory instead pays coherence-transaction traffic that
the compiler-directed schemes avoid entirely.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig
from repro.common.stats import TrafficClass
from repro.experiments.common import Bench, DEFAULT_SCHEMES, ExperimentResult


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    bench = Bench(machine, size)
    result = ExperimentResult(
        experiment="fig13_traffic",
        title="network words per memory access, by traffic class",
        headers=["workload", "scheme", "read", "write", "coherence", "total"],
    )
    for name in bench.names:
        for scheme in DEFAULT_SCHEMES:
            r = bench.result(name, scheme)
            accesses = max(1, r.reads + r.writes)
            read = r.traffic.get(TrafficClass.READ, 0) / accesses
            write = r.traffic.get(TrafficClass.WRITE, 0) / accesses
            coh = r.traffic.get(TrafficClass.COHERENCE, 0) / accesses
            result.rows.append([name, scheme.upper(), read, write, coh,
                                read + write + coh])
    result.notes = ("shape: TPI/SC write traffic > HW write traffic "
                    "(write-through vs write-back), largest on TRFD; "
                    "coherence traffic exists only for HW.")
    return result
