"""Section 5 — task migration support.

When the runtime may migrate a task mid-execution, the compiler loses the
"serial epochs run on the master" guarantee and must mark more reads
(``MarkingOptions(assume_no_migration=False)``); same-iteration
dependences become cross-processor; intra-task validation downgrades are
off; and per-processor *private* storage becomes coherence-visible (a
migrated fragment addresses the original processor's copy remotely).  The
migrated half of a task also finds none of its warm state.  This
experiment injects deterministic migrations and measures the cost of the
safe marking plus the locality loss, TPI vs the directory (which handles
migration almost for free).
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig, default_machine
from repro.compiler.marking import MarkingOptions
from repro.experiments.common import ExperimentResult
from repro.sim import prepare, simulate
from repro.trace.schedule import MigrationSpec
from repro.workloads import build_workload, workload_names


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    machine = machine or default_machine()
    preset = "small" if size == "small" else "default"
    result = ExperimentResult(
        experiment="fig18_migration",
        title="task migration: TPI slowdown vs HW slowdown (migrate every 7th task)",
        headers=["workload", "TPI no-mig cycles", "TPI mig cycles",
                 "TPI slowdown", "HW slowdown", "extra TR sites"],
    )
    migration = MigrationSpec(every=7)
    for name in workload_names():
        program = build_workload(name, size=preset)
        plain = prepare(program, machine)
        migrated = prepare(program, machine,
                           opts=MarkingOptions(assume_no_migration=False),
                           migration=migration)
        tpi_plain = simulate(plain, "tpi")
        tpi_mig = simulate(migrated, "tpi")
        hw_plain = simulate(plain, "hw")
        hw_mig = simulate(migrated, "hw")
        extra_sites = (migrated.marking.stats["sites.time_read.tpi"]
                       - plain.marking.stats["sites.time_read.tpi"])
        result.rows.append([
            name,
            tpi_plain.exec_cycles,
            tpi_mig.exec_cycles,
            tpi_mig.exec_cycles / tpi_plain.exec_cycles,
            hw_mig.exec_cycles / hw_plain.exec_cycles,
            extra_sites,
        ])
    result.notes = ("shape: both schemes stay correct under migration (the "
                    "coherence oracle is active); TPI pays extra Time-Reads "
                    "from the lost same-processor guarantee, so its "
                    "slowdown is >= HW's.")
    return result
