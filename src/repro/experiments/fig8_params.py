"""Figure 8 — default simulation parameters (configuration table)."""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig, default_machine, parameter_table
from repro.experiments.common import ExperimentResult


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    del size
    machine = machine or default_machine()
    result = ExperimentResult(
        experiment="fig8_params",
        title="cache and system organization / latency (defaults)",
        headers=["parameter", "value"],
        rows=[[name, value] for name, value in parameter_table(machine)],
        notes="matches the paper's Figure 8 defaults verbatim.",
    )
    return result
