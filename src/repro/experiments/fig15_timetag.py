"""Timetag-width sensitivity ("a 4-bit or 8-bit timetag is large enough").

Sweeping the timetag width k changes how often the two-phase reset fires
(every 2^(k-1) epochs) and therefore how much old-but-still-fresh data it
destroys.  The paper's claim: performance saturates by k = 4..8.  The
naive flush-on-wrap policy is included as the ablation the two-phase
mechanism improves on.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig, TimetagResetPolicy, TpiConfig, default_machine
from repro.experiments.common import Bench, ExperimentResult

WIDTHS = (2, 3, 4, 6, 8)


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    base = machine or default_machine()
    result = ExperimentResult(
        experiment="fig15_timetag",
        title="TPI miss rate (%) and resets vs timetag width",
        headers=["workload", *(f"k={k}" for k in WIDTHS), "k=4 flush",
                 "resets k=2", "resets k=8"],
    )
    benches = {}
    for k in WIDTHS:
        m = base.with_(tpi=TpiConfig(timetag_bits=k))
        benches[("two", k)] = Bench(m, size)
    flush = base.with_(tpi=TpiConfig(timetag_bits=4,
                                     reset_policy=TimetagResetPolicy.FLUSH))
    benches[("flush", 4)] = Bench(flush, size)

    for name in benches[("two", 8)].names:
        row = [name]
        for k in WIDTHS:
            row.append(100.0 * benches[("two", k)].result(name, "tpi").miss_rate)
        row.append(100.0 * benches[("flush", 4)].result(name, "tpi").miss_rate)
        row.append(benches[("two", 2)].result(name, "tpi").resets)
        row.append(benches[("two", 8)].result(name, "tpi").resets)
        result.rows.append(row)
    result.notes = ("shape: miss rate non-increasing in k, flat by k=4..8; "
                    "tiny tags (k=2) reset every other epoch and lose "
                    "loop-invariant data; flush-on-wrap lands close to "
                    "two-phase at equal k (it clears more but fires half "
                    "as often) — the paper's case for two-phase is the "
                    "incremental, non-bursty invalidation.")
    return result
