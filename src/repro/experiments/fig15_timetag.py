"""Timetag-width sensitivity ("a 4-bit or 8-bit timetag is large enough").

Sweeping the timetag width k changes how often the two-phase reset fires
(every 2^(k-1) epochs) and therefore how much old-but-still-fresh data it
destroys.  The paper's claim: performance saturates by k = 4..8.  The
naive flush-on-wrap policy is included as the ablation the two-phase
mechanism improves on.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig, TimetagResetPolicy, TpiConfig, default_machine
from repro.experiments.common import Bench, ExperimentResult

WIDTHS = (2, 3, 4, 6, 8)


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    base = machine or default_machine()
    result = ExperimentResult(
        experiment="fig15_timetag",
        title="TPI miss rate (%) and resets vs timetag width",
        headers=["workload", *(f"k={k}" for k in WIDTHS), "k=4 flush",
                 "resets k=2", "resets k=8"],
    )
    # The timetag width is a back-end-only knob: every variant shares one
    # trace per workload, so the whole sweep is one gang per workload.
    machines = {("two", k): base.with_(tpi=TpiConfig(timetag_bits=k))
                for k in WIDTHS}
    machines[("flush", 4)] = base.with_(tpi=TpiConfig(
        timetag_bits=4, reset_policy=TimetagResetPolicy.FLUSH))
    bench = Bench(base, size, gang=list(machines.values()))

    for name in bench.names:
        row = [name]
        for k in WIDTHS:
            row.append(100.0 * bench.result(
                name, "tpi", machines[("two", k)]).miss_rate)
        row.append(100.0 * bench.result(
            name, "tpi", machines[("flush", 4)]).miss_rate)
        row.append(bench.result(name, "tpi", machines[("two", 2)]).resets)
        row.append(bench.result(name, "tpi", machines[("two", 8)]).resets)
        result.rows.append(row)
    result.notes = ("shape: miss rate non-increasing in k, flat by k=4..8; "
                    "tiny tags (k=2) reset every other epoch and lose "
                    "loop-invariant data; flush-on-wrap lands close to "
                    "two-phase at equal k (it clears more but fires half "
                    "as often) — the paper's case for two-phase is the "
                    "incremental, non-bursty invalidation.")
    return result
