"""Figure 5 — storage overhead of TPI vs directory schemes (analytic).

Paper-quoted totals at P=1024, i=10: full-map 4 MB SRAM + 64.5 GB DRAM;
LimitLess 4 MB SRAM + 3 GB DRAM; TPI 64 MB SRAM only.  Our formulas (the
ones printed in the paper's own table) reproduce the full-map and TPI
totals exactly with a 16 K-line node cache and 512 K memory blocks per
node; the LimitLess DRAM total differs (the original evidently accounts
pointer widths differently), which EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig
from repro.experiments.common import ExperimentResult
from repro.overhead.storage import figure5_table


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    del machine, size  # analytic: independent of the simulated machine
    rows = figure5_table()
    result = ExperimentResult(
        experiment="fig5_storage",
        title="coherence-state storage at P=1024, i=10 (bits -> bytes)",
        headers=["scheme", "cache SRAM (MB)", "memory DRAM (GB)", "total"],
    )
    for row in rows:
        result.rows.append([
            row.scheme,
            row.cache_sram_bits / (8 << 20),
            row.memory_dram_bits / (8 << 30),
            row.pretty,
        ])
    result.notes = ("shape: TPI needs SRAM proportional to cache size only "
                    "(no DRAM directory); directories pay GBs of DRAM at "
                    "P=1024.")
    return result
