"""Figure 5 — storage overhead of TPI vs directory schemes (analytic).

Paper-quoted totals at P=1024, i=10: full-map 4 MB SRAM + 64.5 GB DRAM;
LimitLess 4 MB SRAM + 3 GB DRAM; TPI 64 MB SRAM only.  Our formulas (the
ones printed in the paper's own table) reproduce the full-map and TPI
totals exactly with a 16 K-line node cache and 512 K memory blocks per
node; the LimitLess DRAM total differs (the original evidently accounts
pointer widths differently), which EXPERIMENTS.md records.

Beyond the paper's three rows, the table includes the two schemes the
repo also simulates: a limited-pointer Dir_iB directory (real
``i * log2(P)``-bit pointer widths, broadcast on overflow) and Tardis
(two timestamps per line + per-block owner, no sharer list).  The
*scaling* view of the same formulas — bits per memory line as P grows to
16384 — is :func:`repro.overhead.figure5_curve`, committed in
``BENCH_scale.json`` by ``benchmarks/bench_scale.py``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.common.config import MachineConfig
from repro.experiments.common import ExperimentResult
from repro.overhead.storage import (CURVE_SCHEMES, figure5_curve,
                                    figure5_table, limited_pointer_overhead,
                                    tardis_overhead)

_P = 1024
_CACHE_LINES = 16 * 1024
_MEMORY_BLOCKS = 512 * 1024

DEFAULT_PLOT_PATH = "docs/fig5_storage.svg"


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    del machine, size  # analytic: independent of the simulated machine
    rows = figure5_table(n_procs=_P, cache_lines=_CACHE_LINES,
                         memory_blocks=_MEMORY_BLOCKS)
    rows.append(limited_pointer_overhead(_P, _CACHE_LINES, _MEMORY_BLOCKS))
    rows.append(tardis_overhead(_P, _CACHE_LINES, _MEMORY_BLOCKS))
    result = ExperimentResult(
        experiment="fig5_storage",
        title="coherence-state storage at P=1024, i=10 (bits -> bytes)",
        headers=["scheme", "cache SRAM (MB)", "memory DRAM (GB)", "total"],
    )
    for row in rows:
        result.rows.append([
            row.scheme,
            row.cache_sram_bits / (8 << 20),
            row.memory_dram_bits / (8 << 30),
            row.pretty,
        ])
    result.notes = ("shape: TPI needs SRAM proportional to cache size only "
                    "(no DRAM directory); full-map pays GBs of DRAM at "
                    "P=1024; limited-pointer and Tardis sit in between, "
                    "growing as log2(P) per block.  The P-scaling curve of "
                    "these formulas is committed in BENCH_scale.json.")
    return result


# ----------------------------------------------------------------- plotting

#: Stroke colors for the SVG fallback (mirrors matplotlib's default cycle
#: so the two renderers look alike).
_COLORS = ("#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd")


def plot(path: str = DEFAULT_PLOT_PATH,
         procs: Optional[Sequence[int]] = None) -> str:
    """Render the fig5 scaling curve (bits per memory line vs P) to SVG.

    Uses matplotlib when it is importable; otherwise falls back to a
    small built-in SVG emitter, so the plot path never requires an
    optional dependency (the committed ``docs/fig5_storage.svg`` comes
    from the fallback — it is plain text and diffs cleanly).
    """
    curve = figure5_curve(procs) if procs else figure5_curve()
    try:
        import matplotlib
    except ImportError:
        text = _svg_chart(curve)
    else:
        matplotlib.use("Agg")
        text = _matplotlib_chart(curve)
    with open(path, "w") as handle:
        handle.write(text)
    return path


def _matplotlib_chart(curve: List[Dict]) -> str:
    import io

    import matplotlib.pyplot as plt

    xs = [row["n_procs"] for row in curve]
    fig, ax = plt.subplots(figsize=(6.4, 4.2))
    for scheme, color in zip(CURVE_SCHEMES, _COLORS):
        ax.plot(xs, [row["bits_per_line"][scheme] for row in curve],
                marker="o", label=scheme, color=color)
    ax.set_xscale("log", base=2)
    ax.set_yscale("log")
    ax.set_xticks(xs, [str(x) for x in xs])
    ax.set_xlabel("processors")
    ax.set_ylabel("directory bits per memory line")
    ax.set_title("Figure 5 scaling: coherence state per memory line")
    ax.legend()
    ax.grid(True, which="both", alpha=0.3)
    buf = io.StringIO()
    fig.savefig(buf, format="svg")
    plt.close(fig)
    return buf.getvalue()


def _svg_chart(curve: List[Dict], width: int = 640, height: int = 420) -> str:
    """Dependency-free log-log line chart of the fig5 curve."""
    left, right, top, bottom = 64, 150, 40, 50
    plot_w = width - left - right
    plot_h = height - top - bottom
    xs = [row["n_procs"] for row in curve]
    ys = [row["bits_per_line"][s] for row in curve for s in CURVE_SCHEMES]
    x_lo, x_hi = math.log2(min(xs)), math.log2(max(xs))
    y_lo = math.floor(math.log10(min(ys)))
    y_hi = math.ceil(math.log10(max(ys)))

    def px(p: float) -> float:
        return left + plot_w * (math.log2(p) - x_lo) / (x_hi - x_lo or 1)

    def py(bits: float) -> float:
        return top + plot_h * (y_hi - math.log10(bits)) / (y_hi - y_lo or 1)

    out = [f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
           f'height="{height}" viewBox="0 0 {width} {height}" '
           f'font-family="sans-serif" font-size="12">',
           f'<rect width="{width}" height="{height}" fill="white"/>',
           f'<text x="{left + plot_w / 2:.1f}" y="20" text-anchor="middle" '
           f'font-size="14">Figure 5 scaling: coherence state per memory '
           f'line</text>']
    for decade in range(y_lo, y_hi + 1):
        y = py(10 ** decade)
        out.append(f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" '
                   f'y2="{y:.1f}" stroke="#ddd"/>')
        out.append(f'<text x="{left - 6}" y="{y + 4:.1f}" '
                   f'text-anchor="end">{10 ** decade:g}</text>')
    for p in xs:
        x = px(p)
        out.append(f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" '
                   f'y2="{top + plot_h}" stroke="#eee"/>')
        out.append(f'<text x="{x:.1f}" y="{top + plot_h + 16}" '
                   f'text-anchor="middle">{p}</text>')
    out.append(f'<rect x="{left}" y="{top}" width="{plot_w}" '
               f'height="{plot_h}" fill="none" stroke="#333"/>')
    out.append(f'<text x="{left + plot_w / 2:.1f}" y="{height - 12}" '
               f'text-anchor="middle">processors</text>')
    out.append(f'<text x="16" y="{top + plot_h / 2:.1f}" '
               f'text-anchor="middle" transform="rotate(-90 16 '
               f'{top + plot_h / 2:.1f})">bits per memory line</text>')
    for idx, (scheme, color) in enumerate(zip(CURVE_SCHEMES, _COLORS)):
        points = " ".join(
            f"{px(row['n_procs']):.1f},{py(row['bits_per_line'][scheme]):.1f}"
            for row in curve)
        out.append(f'<polyline points="{points}" fill="none" '
                   f'stroke="{color}" stroke-width="2"/>')
        for row in curve:
            out.append(f'<circle cx="{px(row["n_procs"]):.1f}" '
                       f'cy="{py(row["bits_per_line"][scheme]):.1f}" '
                       f'r="3" fill="{color}"/>')
        ly = top + 10 + 18 * idx
        lx = left + plot_w + 12
        out.append(f'<line x1="{lx}" y1="{ly}" x2="{lx + 22}" y2="{ly}" '
                   f'stroke="{color}" stroke-width="2"/>')
        out.append(f'<text x="{lx + 28}" y="{ly + 4}">{scheme}</text>')
    out.append("</svg>")
    return "\n".join(out) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.experiments.fig5_storage [--plot [PATH]]``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Figure 5 storage-overhead table and scaling plot")
    parser.add_argument("--plot", nargs="?", const=DEFAULT_PLOT_PATH,
                        metavar="PATH",
                        help=f"write the scaling curve as SVG "
                             f"(default {DEFAULT_PLOT_PATH})")
    args = parser.parse_args(argv)
    print(run().render())
    if args.plot:
        print(f"wrote {plot(args.plot)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
