"""Figure 5 — storage overhead of TPI vs directory schemes (analytic).

Paper-quoted totals at P=1024, i=10: full-map 4 MB SRAM + 64.5 GB DRAM;
LimitLess 4 MB SRAM + 3 GB DRAM; TPI 64 MB SRAM only.  Our formulas (the
ones printed in the paper's own table) reproduce the full-map and TPI
totals exactly with a 16 K-line node cache and 512 K memory blocks per
node; the LimitLess DRAM total differs (the original evidently accounts
pointer widths differently), which EXPERIMENTS.md records.

Beyond the paper's three rows, the table includes the two schemes the
repo also simulates: a limited-pointer Dir_iB directory (real
``i * log2(P)``-bit pointer widths, broadcast on overflow) and Tardis
(two timestamps per line + per-block owner, no sharer list).  The
*scaling* view of the same formulas — bits per memory line as P grows to
16384 — is :func:`repro.overhead.figure5_curve`, committed in
``BENCH_scale.json`` by ``benchmarks/bench_scale.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig
from repro.experiments.common import ExperimentResult
from repro.overhead.storage import (figure5_table, limited_pointer_overhead,
                                    tardis_overhead)

_P = 1024
_CACHE_LINES = 16 * 1024
_MEMORY_BLOCKS = 512 * 1024


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    del machine, size  # analytic: independent of the simulated machine
    rows = figure5_table(n_procs=_P, cache_lines=_CACHE_LINES,
                         memory_blocks=_MEMORY_BLOCKS)
    rows.append(limited_pointer_overhead(_P, _CACHE_LINES, _MEMORY_BLOCKS))
    rows.append(tardis_overhead(_P, _CACHE_LINES, _MEMORY_BLOCKS))
    result = ExperimentResult(
        experiment="fig5_storage",
        title="coherence-state storage at P=1024, i=10 (bits -> bytes)",
        headers=["scheme", "cache SRAM (MB)", "memory DRAM (GB)", "total"],
    )
    for row in rows:
        result.rows.append([
            row.scheme,
            row.cache_sram_bits / (8 << 20),
            row.memory_dram_bits / (8 << 30),
            row.pretty,
        ])
    result.notes = ("shape: TPI needs SRAM proportional to cache size only "
                    "(no DRAM directory); full-map pays GBs of DRAM at "
                    "P=1024; limited-pointer and Tardis sit in between, "
                    "growing as log2(P) per block.  The P-scaling curve of "
                    "these formulas is committed in BENCH_scale.json.")
    return result
