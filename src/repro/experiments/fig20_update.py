"""Update-based directory extension (the paper's remark on [10]).

Compares the invalidation directory (HW), the write-update directory, and
the update directory with the coalescing write buffer — the configuration
the paper alludes to when noting the write-cache technique "can also be
employed to remove redundant write traffic for update-based coherence
protocols".
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig, WriteBufferKind, default_machine
from repro.common.stats import TrafficClass
from repro.experiments.common import Bench, ExperimentResult


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    base = machine or default_machine()
    plain = Bench(base, size)
    coal = Bench(base.with_(write_buffer=WriteBufferKind.COALESCING), size)
    result = ExperimentResult(
        experiment="fig20_update",
        title="invalidate vs update directory: miss rate (%) and write+update words/access",
        headers=["workload", "HW miss", "UPD miss", "HW wr+coh", "UPD wr",
                 "UPD+coalesce wr", "updates merged %"],
    )
    for name in plain.names:
        hw = plain.result(name, "hw")
        upd = plain.result(name, "update")
        updc = coal.result(name, "update")
        accesses = max(1, hw.reads + hw.writes)
        hw_wr = (hw.traffic.get(TrafficClass.WRITE, 0)
                 + hw.traffic.get(TrafficClass.COHERENCE, 0)) / accesses
        upd_wr = upd.traffic.get(TrafficClass.WRITE, 0) / accesses
        updc_wr = updc.traffic.get(TrafficClass.WRITE, 0) / accesses
        merged = updc.extra.get("merged_writes", 0)
        total = max(1, updc.extra.get("buffered_writes", 1))
        result.rows.append([
            name, 100.0 * hw.miss_rate, 100.0 * upd.miss_rate,
            hw_wr, upd_wr, updc_wr, 100.0 * merged / total,
        ])
    result.notes = ("shape: the update directory eliminates sharing misses "
                    "entirely (miss rate <= HW's) at the cost of much more "
                    "write/update traffic; the coalescing buffer recovers "
                    "traffic where writes are redundant (most on TRFD) but "
                    "can lose slightly where they are not, because drained "
                    "updates broadcast to the larger end-of-epoch sharer "
                    "sets.")
    return result
