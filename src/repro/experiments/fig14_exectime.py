"""Execution time — normalized to the hardware directory.

The paper's bottom line: in spite of conservative compiler decisions, the
TPI scheme's overall performance is comparable to the full-map directory,
while SC and BASE are far behind.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig
from repro.experiments.common import Bench, DEFAULT_SCHEMES, ExperimentResult


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    bench = Bench(machine, size)
    result = ExperimentResult(
        experiment="fig14_exectime",
        title="execution time normalized to the full-map directory (HW = 1)",
        headers=["workload", *(s.upper() for s in DEFAULT_SCHEMES)],
    )
    for name in bench.names:
        hw_cycles = bench.result(name, "hw").exec_cycles
        row = [name]
        for scheme in DEFAULT_SCHEMES:
            row.append(bench.result(name, scheme).exec_cycles / hw_cycles)
        result.rows.append(row)
    result.notes = ("shape: TPI within a small factor of HW = 1.0 on every "
                    "benchmark; SC and BASE several times slower.")
    return result
