"""Processor-count scaling — speedup curves per scheme.

All curves are normalized to one common baseline: **BASE at P = 1**, i.e.
the machine as shipped (no coherence support, shared data uncached, one
processor).  Self-relative speedups would mislead here — BASE's own P=1
time is pathologically slow (every shared access remote), and a
uniprocessor directory machine has no sharing misses at all — so the
common baseline is what answers the buyer's question: how much faster is
this machine with scheme X and P processors?

Claims: at every P the caching schemes dominate BASE; TPI's curve rises
with P (caching and parallelism compose); the directory's does too except
where tiny per-epoch work makes coherence and dispatch overheads dominate.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig, default_machine
from repro.experiments.common import ExperimentResult
from repro.sim import prepare, simulate
from repro.workloads import build_workload, workload_names

PROCS = (1, 4, 16, 32)
SCHEMES = ("base", "tpi", "hw")


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    base = machine or default_machine()
    preset = "small" if size == "small" else "default"
    result = ExperimentResult(
        experiment="fig23_scaling",
        title="speedup over the no-coherence uniprocessor (BASE at P=1)",
        headers=["workload", "scheme", *(f"P={p}" for p in PROCS)],
    )
    for name in workload_names():
        program = build_workload(name, size=preset)
        runs = {p: prepare(program, base.with_(n_procs=p)) for p in PROCS}
        baseline = simulate(runs[1], "base").exec_cycles
        for scheme in SCHEMES:
            row = [name, scheme.upper()]
            for p in PROCS:
                cycles = simulate(runs[p], scheme).exec_cycles
                row.append(baseline / cycles)
            result.rows.append(row)
    result.notes = ("shape: TPI and HW dominate BASE at every P; TPI's "
                    "curve rises with P; coherence/dispatch overheads can "
                    "flatten HW's curve on tiny per-epoch workloads.")
    return result
