"""Processor-count scaling — speedup curves per scheme.

All curves are normalized to one common baseline: **BASE at P = 1**, i.e.
the machine as shipped (no coherence support, shared data uncached, one
processor).  Self-relative speedups would mislead here — BASE's own P=1
time is pathologically slow (every shared access remote), and a
uniprocessor directory machine has no sharing misses at all — so the
common baseline is what answers the buyer's question: how much faster is
this machine with scheme X and P processors?

Claims: at every P the caching schemes dominate BASE; TPI's curve rises
with P (caching and parallelism compose); the directory's does too except
where tiny per-epoch work makes coherence and dispatch overheads dominate.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig, default_machine
from repro.experiments.common import ExperimentResult
from repro.sim import prepare, simulate
from repro.workloads import build_workload, workload_names

PROCS = (1, 4, 16, 32)
SCHEMES = ("base", "tpi", "hw")

#: The extended processor axis: geometric sweep past the paper's 32-proc
#: ceiling up to 16384.  Per-proc state is sparse, so the cost of a point
#: grows with the *busy* processor count (bounded by the workload's DOALL
#: widths), not with P.
EXTENDED_PROCS = (1, 16, 64, 256, 1024, 4096, 16384)
EXTENDED_WORKLOAD = "trfd"


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    base = machine or default_machine()
    preset = "small" if size == "small" else "default"
    result = ExperimentResult(
        experiment="fig23_scaling",
        title="speedup over the no-coherence uniprocessor (BASE at P=1)",
        headers=["workload", "scheme", *(f"P={p}" for p in PROCS)],
    )
    for name in workload_names():
        program = build_workload(name, size=preset)
        runs = {p: prepare(program, base.with_(n_procs=p)) for p in PROCS}
        baseline = simulate(runs[1], "base").exec_cycles
        for scheme in SCHEMES:
            row = [name, scheme.upper()]
            for p in PROCS:
                cycles = simulate(runs[p], scheme).exec_cycles
                row.append(baseline / cycles)
            result.rows.append(row)
    result.notes = ("shape: TPI and HW dominate BASE at every P; TPI's "
                    "curve rises with P; coherence/dispatch overheads can "
                    "flatten HW's curve on tiny per-epoch workloads.")
    return result


def run_extended(machine: Optional[MachineConfig] = None,
                 size: str = "small") -> ExperimentResult:
    """The processor axis past the paper: 1 to 16384 processors.

    One small workload (the cheapest in the suite), fast engine only —
    the reference engine's parity with it is established separately up to
    the counts it can reach in reasonable time (``tests/test_scaling.py``,
    ``benchmarks/bench_scale.py``).  Speedups saturate once P exceeds the
    workload's widest DOALL: extra processors only add barrier idle.
    """
    base = machine or default_machine()
    preset = "small" if size in ("small", "paper") else size
    result = ExperimentResult(
        experiment="fig23_scaling_x",
        title=f"speedup over BASE at P=1 ({EXTENDED_WORKLOAD}, "
              f"{preset}) out to P=16384",
        headers=["workload", "scheme", *(f"P={p}" for p in EXTENDED_PROCS)],
    )
    program = build_workload(EXTENDED_WORKLOAD, size=preset)
    runs = {p: prepare(program, base.with_(n_procs=p, engine="fast"))
            for p in EXTENDED_PROCS}
    baseline = simulate(runs[1], "base").exec_cycles
    for scheme in SCHEMES:
        row = [EXTENDED_WORKLOAD, scheme.upper()]
        for p in EXTENDED_PROCS:
            cycles = simulate(runs[p], scheme).exec_cycles
            row.append(baseline / cycles)
        result.rows.append(row)
    result.notes = ("shape: curves saturate once P exceeds the widest "
                    "DOALL; the wide-machine points cost the same "
                    "simulation work as the saturation point because "
                    "per-proc state is sparse.")
    return result
