"""ISCA-1996 vs 2015: TPI against the directory, Tardis, and snooping.

Not a figure of the source paper — a comparison it could not run.  The
paper benchmarks TPI (compiler-assisted timetags) against the full-map
directory and software-flush schemes of 1996; Tardis (PAPERS.md)
revisited the same idea — coherence from logical timestamps instead of
invalidations — two decades later, and bus snooping is the classical
small-scale baseline both papers define themselves against.  This
experiment puts all four on the paper's workloads and machine.

All four schemes run in **one scheme-gang pass** per workload
(:func:`repro.sim.gang.run_gang`): one prepared columnar trace, one
lockstep walk of the shared epoch batches, each scheme's counters filled
from the same cache-hot analyses.  Results are byte-identical to solo
runs; the gang only removes the redundant per-scheme trace passes.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig, default_machine
from repro.common.stats import TrafficClass
from repro.experiments.common import ExperimentResult
from repro.workloads import build_workload, workload_names

SCHEMES = ("tpi", "hw", "tardis", "snoop")


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    from repro.sim import prepare
    from repro.sim.gang import GangMember, run_gang

    base = machine or default_machine()
    size_key = "small" if size == "small" else "default"
    result = ExperimentResult(
        experiment="cmp_coherence",
        title="ISCA-1996 vs 2015: time vs HW=1, miss %, words/access "
              "(one scheme-gang pass)",
        headers=["workload",
                 *(f"{s.upper()} time" for s in SCHEMES),
                 *(f"{s.upper()} miss" for s in SCHEMES),
                 *(f"{s.upper()} w/acc" for s in SCHEMES)],
    )
    for name in workload_names():
        prepared = prepare(build_workload(name, size=size_key), base)
        results = dict(zip(SCHEMES, run_gang(
            prepared, [GangMember(machine=base, scheme=s) for s in SCHEMES])))
        hw_cycles = results["hw"].exec_cycles
        row = [name]
        row.extend(results[s].exec_cycles / hw_cycles for s in SCHEMES)
        row.extend(100.0 * results[s].miss_rate for s in SCHEMES)
        for s in SCHEMES:
            r = results[s]
            accesses = max(1, r.reads + r.writes)
            row.append(sum(r.traffic.values()) / accesses)
        result.rows.append(row)
    result.notes = (
        "shape: snoop and the full-map directory make identical "
        "invalidation decisions, so on this point-to-point fabric their "
        "columns coincide (a real shared bus would serialize snoop at "
        "scale — the reason both 1996 and 2015 look past it); TPI runs "
        "within ~2x of HW = 1; Tardis replaces invalidations with "
        "timestamp checks the way TPI does, but its fixed leases expire "
        "on cross-epoch reuse, so its miss rate runs about twice TPI's "
        "while the data-less renewals keep its traffic much closer.")
    return result
