"""Miss decomposition — necessary vs unnecessary misses (TPI vs HW).

The paper's key fairness argument: both schemes suffer *unnecessary*
misses of comparable magnitude — the directory from false sharing on
multi-word lines, TPI from conservative compile-time marking.  This
experiment decomposes every read miss of both schemes into
cold/replacement/reset (capacity-like), true-sharing (necessary), and
unnecessary (false-sharing or compiler-conservative).
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig
from repro.common.stats import MissKind
from repro.experiments.common import Bench, ExperimentResult


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    bench = Bench(machine, size)
    result = ExperimentResult(
        experiment="fig12_classification",
        title="read misses per 1000 reads, by cause",
        headers=["workload", "scheme", "cold+repl", "reset", "true sharing",
                 "unnecessary", "unnecessary kind"],
    )
    for name in bench.names:
        for scheme in ("tpi", "hw"):
            r = bench.result(name, scheme)
            per_k = 1000.0 / max(1, r.reads)
            capacity = (r.kind_count(MissKind.COLD)
                        + r.kind_count(MissKind.REPLACEMENT))
            unnecessary_kind = ("conservative" if scheme == "tpi"
                                else "false sharing")
            result.rows.append([
                name, scheme.upper(),
                capacity * per_k,
                r.kind_count(MissKind.RESET) * per_k,
                r.kind_count(MissKind.TRUE_SHARING) * per_k,
                r.unnecessary_misses * per_k,
                unnecessary_kind,
            ])
    result.notes = ("shape: TPI's unnecessary misses come only from "
                    "compiler conservatism, HW's only from false sharing; "
                    "their magnitudes are comparable (same order).")
    return result
