"""Execution-time breakdown — where the processor-cycles go.

The classic normalized stacked-bar figure: each (workload, scheme) run's
P x exec_cycles processor-cycles split into busy / read-stall / sync /
reset / dispatch / barrier-idle.  It localizes *why* each scheme wins or
loses: BASE and SC drown in read stalls, TPI adds reset stalls and
conservative-miss stalls, the directory converts stalls into (invisible
here) coherence traffic until the network pushes read latency up.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig
from repro.experiments.common import Bench, DEFAULT_SCHEMES, ExperimentResult

CATEGORIES = ("busy", "read_stall", "sync_stall", "reset_stall",
              "dispatch", "barrier_idle")


def run(machine: Optional[MachineConfig] = None,
        size: str = "paper") -> ExperimentResult:
    bench = Bench(machine, size)
    result = ExperimentResult(
        experiment="fig22_breakdown",
        title="processor-cycle breakdown (% of P x exec_cycles)",
        headers=["workload", "scheme", *(c for c in CATEGORIES)],
    )
    for name in bench.names:
        for scheme in DEFAULT_SCHEMES:
            r = bench.result(name, scheme)
            fractions = r.breakdown_fractions()
            result.rows.append([
                name, scheme.upper(),
                *(100.0 * fractions.get(c, 0.0) for c in CATEGORIES),
            ])
    result.notes = ("shape: busy fraction orders BASE < SC < TPI <= HW; "
                    "read stalls dominate the compiler-directed schemes' "
                    "losses; every row sums to ~100% (write stalls appear "
                    "only under sequential consistency).")
    return result
