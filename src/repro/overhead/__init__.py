"""Analytic storage-overhead models (Figure 5 of the paper)."""

from repro.overhead.storage import (
    CURVE_SCHEMES,
    OverheadRow,
    bits_per_memory_line,
    figure5_curve,
    figure5_table,
    full_map_overhead,
    limited_pointer_overhead,
    limitless_overhead,
    render_figure5,
    tardis_overhead,
    tpi_overhead,
)

__all__ = [
    "CURVE_SCHEMES",
    "OverheadRow",
    "bits_per_memory_line",
    "figure5_curve",
    "figure5_table",
    "full_map_overhead",
    "limited_pointer_overhead",
    "limitless_overhead",
    "render_figure5",
    "tardis_overhead",
    "tpi_overhead",
]
