"""Analytic storage-overhead models (Figure 5 of the paper)."""

from repro.overhead.storage import (
    OverheadRow,
    figure5_table,
    full_map_overhead,
    limitless_overhead,
    render_figure5,
    tpi_overhead,
)

__all__ = [
    "OverheadRow",
    "figure5_table",
    "full_map_overhead",
    "limitless_overhead",
    "render_figure5",
    "tpi_overhead",
]
