"""Storage-overhead comparison (Figure 5).

The paper compares, in bits, the hardware cost of coherence state for the
full-map directory [8], the LimitLess directory DIR_i [2], and TPI:

================  ==================  =====================
scheme            cache SRAM (bits)   memory DRAM (bits)
================  ==================  =====================
full-map          2 * C * P           (P + 2) * M * P
LimitLess DIR_i   2 * C * P           (i + 2) * M * P
TPI               8 * L * C * P       none
================  ==================  =====================

with P processors, C cache *lines* per node, M memory *blocks* per node,
L words per line, an 8-bit timetag, and i LimitLess pointers.  (Directory
schemes keep 2 state bits per cached line; TPI keeps an 8-bit timetag per
word of every line.)  At P = 1024, i = 10 the paper quotes: 4 MB SRAM +
64.5 GB DRAM (full-map), 4 MB SRAM + 3 GB DRAM (LimitLess), 64 MB SRAM
only (TPI).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence


def _clog2(n: int) -> int:
    """Bits needed to name one of ``n`` things (at least 1)."""
    return max(1, math.ceil(math.log2(max(2, n))))


@dataclass(frozen=True)
class OverheadRow:
    """Coherence-state storage of one scheme, in bits."""

    scheme: str
    cache_sram_bits: int
    memory_dram_bits: int

    @property
    def total_bits(self) -> int:
        return self.cache_sram_bits + self.memory_dram_bits

    @staticmethod
    def _fmt(bits: int) -> str:
        units = [("GB", 8 << 30), ("MB", 8 << 20), ("KB", 8 << 10)]
        for unit, scale in units:
            if bits >= scale:
                value = bits / scale
                return f"{value:.1f} {unit}" if value < 100 else f"{value:.0f} {unit}"
        return f"{bits} bits"

    @property
    def pretty(self) -> str:
        parts = []
        if self.cache_sram_bits:
            parts.append(f"{self._fmt(self.cache_sram_bits)} SRAM")
        if self.memory_dram_bits:
            parts.append(f"{self._fmt(self.memory_dram_bits)} DRAM")
        return " / ".join(parts) if parts else "none"


def full_map_overhead(n_procs: int, cache_lines: int,
                      memory_blocks: int) -> OverheadRow:
    """Full-map directory: 2 state bits per cached line; P presence bits +
    2 state bits per memory block, per node."""
    return OverheadRow(
        scheme="full-map",
        cache_sram_bits=2 * cache_lines * n_procs,
        memory_dram_bits=(n_procs + 2) * memory_blocks * n_procs,
    )


def limitless_overhead(n_procs: int, cache_lines: int, memory_blocks: int,
                       pointers: int = 10) -> OverheadRow:
    """LimitLess DIR_i: i pointers + 2 state bits per memory block."""
    return OverheadRow(
        scheme=f"LimitLess DIR_{pointers}",
        cache_sram_bits=2 * cache_lines * n_procs,
        memory_dram_bits=(pointers + 2) * memory_blocks * n_procs,
    )


def limited_pointer_overhead(n_procs: int, cache_lines: int,
                             memory_blocks: int,
                             pointers: int = 10) -> OverheadRow:
    """Limited-pointer Dir_iB: i pointers of ``ceil(log2 P)`` bits each +
    2 state bits per memory block; overflow falls back to broadcast, so
    no software-extended state is charged.  Unlike the paper's printed
    LimitLess formula this charges real pointer widths, which is what
    makes the per-line cost grow as ``i * log2(P)`` instead of ``P``."""
    return OverheadRow(
        scheme=f"limited-pointer Dir_{pointers}B",
        cache_sram_bits=2 * cache_lines * n_procs,
        memory_dram_bits=(pointers * _clog2(n_procs) + 2)
        * memory_blocks * n_procs,
    )


def tardis_overhead(n_procs: int, cache_lines: int, memory_blocks: int,
                    ts_bits: int = 8) -> OverheadRow:
    """Tardis: two logical timestamps (wts, rts) per cached line, and per
    memory block two timestamps plus an owner id — no sharer list at all,
    so the per-block cost grows as ``log2(P)``, not ``P``."""
    return OverheadRow(
        scheme="Tardis",
        cache_sram_bits=2 * ts_bits * cache_lines * n_procs,
        memory_dram_bits=(2 * ts_bits + _clog2(n_procs + 1))
        * memory_blocks * n_procs,
    )


def tpi_overhead(n_procs: int, cache_lines: int, line_words: int,
                 timetag_bits: int = 8) -> OverheadRow:
    """TPI: a timetag per cache word; no memory-side state at all."""
    return OverheadRow(
        scheme="two-phase invalidation",
        cache_sram_bits=timetag_bits * line_words * cache_lines * n_procs,
        memory_dram_bits=0,
    )


def figure5_table(n_procs: int = 1024, cache_lines: int = 16 * 1024,
                  memory_blocks: int = 512 * 1024, line_words: int = 4,
                  pointers: int = 10,
                  timetag_bits: int = 8) -> List[OverheadRow]:
    """The Figure 5 comparison at its stated operating point.

    Defaults reproduce the paper's quoted totals: 1024 processors, a
    16 K-line node cache (4 MB directory SRAM, 64 MB TPI SRAM), and 512 K
    memory blocks per node (64 GB full-map DRAM ~ the quoted 64.5 GB).
    The quoted LimitLess total (3 GB) is larger than the printed formula
    yields (0.75 GB) — the original evidently charges pointer widths
    differently; EXPERIMENTS.md records the discrepancy.
    """
    return [
        full_map_overhead(n_procs, cache_lines, memory_blocks),
        limitless_overhead(n_procs, cache_lines, memory_blocks, pointers),
        tpi_overhead(n_procs, cache_lines, line_words, timetag_bits),
    ]


#: Schemes on the fig5-style scaling curve, in legend order.
CURVE_SCHEMES = ("full-map", "limited-pointer", "LimitLESS", "TPI", "Tardis")


def bits_per_memory_line(scheme: str, n_procs: int,
                         cache_lines: int = 16 * 1024,
                         memory_blocks: int = 512 * 1024,
                         line_words: int = 4, pointers: int = 10,
                         timetag_bits: int = 8,
                         ts_bits: int = 8) -> float:
    """Total coherence-state bits per *memory line*, SRAM amortized.

    The denominator is the machine's total memory lines (``M * P``); the
    numerator is the scheme's total coherence state, cache-side SRAM
    included so cache-only schemes (TPI) don't score a flat zero.  This
    is the y-axis of the fig5-style scaling curve: full-map grows as
    ``P``, limited-pointer/LimitLESS/Tardis as ``log2 P``, TPI stays
    constant.
    """
    if scheme == "full-map":
        row = full_map_overhead(n_procs, cache_lines, memory_blocks)
    elif scheme == "limited-pointer":
        row = limited_pointer_overhead(n_procs, cache_lines, memory_blocks,
                                       pointers)
    elif scheme == "LimitLESS":
        row = limitless_overhead(n_procs, cache_lines, memory_blocks,
                                 pointers)
    elif scheme == "TPI":
        row = tpi_overhead(n_procs, cache_lines, line_words, timetag_bits)
    elif scheme == "Tardis":
        row = tardis_overhead(n_procs, cache_lines, memory_blocks, ts_bits)
    else:
        raise KeyError(f"unknown curve scheme {scheme!r}; choose from "
                       f"{CURVE_SCHEMES}")
    return row.total_bits / (memory_blocks * n_procs)


def figure5_curve(procs: Sequence[int] = (64, 256, 1024, 4096, 16384),
                  **kwargs) -> List[Dict]:
    """The fig5-style storage curve: bits per memory line vs P.

    Returns one dict per processor count with a ``bits_per_line`` column
    per scheme; keyword arguments are forwarded to
    :func:`bits_per_memory_line` (operating point overrides).
    """
    return [{"n_procs": p,
             "bits_per_line": {scheme: round(
                 bits_per_memory_line(scheme, p, **kwargs), 4)
                 for scheme in CURVE_SCHEMES}}
            for p in procs]


def render_figure5(rows: List[OverheadRow]) -> str:
    lines = [f"{'scheme':<24} {'cache SRAM':>14} {'memory DRAM':>14} {'total':>22}"]
    for row in rows:
        lines.append(
            f"{row.scheme:<24} {row._fmt(row.cache_sram_bits):>14} "
            f"{(row._fmt(row.memory_dram_bits) if row.memory_dram_bits else 'none'):>14} "
            f"{row.pretty:>22}")
    return "\n".join(lines)
