"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``list``
    Show available workloads, schemes, and experiments.
``show <workload>``
    Print the (marking-annotated) source listing of a workload.
``simulate <workload> [--scheme ...] [--procs N] [--size small|default]``
    Run one or more schemes over a workload and print result summaries.
``experiment <id>|all [--size small|paper] [--json PATH] [--chart COLUMN]``
    Regenerate a paper table/figure.
``sweep <workload> --axis name=v1,v2,... [--scheme ...]``
    Grid study over machine parameters (axes: line, size, k, procs, wbuf).
``lint <workload> [--scheme tpi|sc|tardis|snoop] [--mode inline|summary|none]``
    Verify the marking pass against the independent staleness oracle and
    the dynamic sanitizer; see docs/ANALYSIS.md.  The hardware schemes
    (``tardis``/``snoop``) have no marking: they run the sanitizer alone
    under the scheme's hardware freshness model.  Exit codes: 0 clean,
    1 findings (errors, or warnings with ``--strict``), 2 usage error.
    ``--modelcheck`` appends the protocol verification below.
``modelcheck [--scheme tpi|tardis] [--procs N --lines N --words N --k N ...]``
    Bounded-exhaustive verification of a protocol itself: enumerate
    every reachable state of tiny configurations and assert staleness
    safety, checking the exact rule functions the simulator executes
    (see docs/ANALYSIS.md).  ``--scheme tpi`` (default) verifies the
    1996 timetag protocol (``--epochs`` bounds the run; the default grid
    forces >= 2 counter wrap-arounds); ``--scheme tardis`` verifies the
    Tardis lease protocol (``--lease``/``--max-ts`` bound the run; the
    default grid reaches >= 2 timestamp rebases).  ``--self-test`` seeds
    known protocol bugs and requires 100% counterexample detection.
    Exit codes as for ``lint``.
``cache stats|clear``
    Inspect or empty the on-disk artifact cache.
``serve [--host H] [--port P] [--peers LIST]``
    Run the simulation-as-a-service HTTP server (``POST /simulate``,
    ``POST /sweep``, ``GET /jobs/<id>``, ``GET /healthz``,
    ``GET /stats``); see docs/SERVE.md.  Responses are byte-identical
    to the matching ``--json`` CLI output; identical in-flight requests
    are coalesced; warm requests are served straight from the (sharded,
    peer-aware) artifact cache.

``simulate``, ``experiment``, and ``sweep`` all execute through the
:mod:`repro.runtime` engine and share its flags: ``--jobs N`` fans
simulations out over N worker processes (0 = all cores), ``--cache-dir``
relocates the artifact cache (default ``~/.cache/repro`` or
``$REPRO_CACHE_DIR``), ``--no-cache`` disables it, ``--report PATH``
writes run telemetry (cache hits, per-job wall times, worker utilization,
per-phase compile/trace/engine timings) as JSON, and ``--json PATH``
writes the results themselves as JSON (``simulate`` adds a ``phases``
key alongside the per-scheme results when phase timings were recorded).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.coherence import SCHEME_NAMES
from repro.common.config import default_machine
from repro.common.errors import ReproError
from repro.compiler import mark_program
from repro.experiments import experiment_ids, run_experiment
from repro.ir.pprint import format_program
from repro.sim import simulate_all
from repro.workloads import build_workload, workload_names


def _add_runtime_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (0 = all cores; default 1)")
    sub.add_argument("--engine", metavar="NAME",
                     help="simulation engine: fast, gang, or reference "
                          "(default $REPRO_ENGINE or fast; gang shares "
                          "trace-static analyses across sweep variants; the "
                          "engines are bit-identical, see docs/PERF.md)")
    sub.add_argument("--jit", nargs="?", const="on", metavar="MODE",
                     help="compiled (numba) kernel tier on top of the fast/"
                          "gang engines: on, off, or interp (default "
                          "$REPRO_JIT or off; bare --jit means on; falls "
                          "back cleanly when numba is absent — bit-identical "
                          "either way, see docs/PERF.md)")
    sub.add_argument("--cache-dir", metavar="PATH",
                     help="artifact cache location (default ~/.cache/repro "
                          "or $REPRO_CACHE_DIR)")
    sub.add_argument("--no-cache", action="store_true",
                     help="do not read or write the artifact cache")
    sub.add_argument("--report", metavar="PATH",
                     help="write run telemetry (cache hits, wall times) as JSON")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Choi & Yew (ISCA 1996) cache-coherence reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, schemes, experiments")

    show = sub.add_parser("show", help="print a workload's marked listing")
    show.add_argument("workload", choices=workload_names())
    show.add_argument("--size", default="small", choices=("small", "default"))
    show.add_argument("--no-marking", action="store_true",
                      help="omit Time-Read annotations")

    simp = sub.add_parser("simulate", help="simulate schemes on a workload")
    simp.add_argument("workload", choices=workload_names())
    simp.add_argument("--scheme", action="append", choices=SCHEME_NAMES,
                      help="repeatable; default: base sc tpi hw")
    simp.add_argument("--procs", type=int, default=16)
    simp.add_argument("--size", default="default", choices=("small", "default"))
    simp.add_argument("--json", metavar="PATH",
                      help="also write the results as JSON")
    _add_runtime_args(simp)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("experiment", choices=[*experiment_ids(), "all"])
    exp.add_argument("--size", default="small", choices=("small", "paper"))
    exp.add_argument("--json", metavar="PATH",
                     help="also write the result table(s) as JSON")
    exp.add_argument("--chart", metavar="COLUMN",
                     help="also print an ASCII bar chart of one column")
    exp.add_argument("--plot", nargs="?", const="", metavar="PATH",
                     help="fig5_storage only: write the scaling curve as "
                          "SVG (default docs/fig5_storage.svg; matplotlib "
                          "when installed, a built-in emitter otherwise)")
    _add_runtime_args(exp)

    swp = sub.add_parser("sweep", help="grid study over machine parameters")
    swp.add_argument("workload", choices=workload_names())
    swp.add_argument("--axis", action="append", required=True,
                     metavar="NAME=V1,V2,...",
                     help="axes: line=<words>, size=<KB>, k=<bits>, "
                          "procs=<N>, wbuf (no values); repeatable")
    swp.add_argument("--scheme", action="append", choices=SCHEME_NAMES,
                     help="repeatable; default: tpi hw")
    swp.add_argument("--size", default="small",
                     choices=("small", "default", "large"))
    swp.add_argument("--json", metavar="PATH",
                     help="also write the sweep points as JSON")
    _add_runtime_args(swp)

    lint = sub.add_parser("lint", help="verify marking against the oracle")
    lint.add_argument("workload",
                      help="workload name (see `repro list`) or 'all'")
    lint.add_argument("--scheme", action="append", metavar="SCHEME",
                      help="map to check: tpi, sc — or a hardware scheme "
                           "to sanitize: tardis, snoop (repeatable; "
                           "default tpi+sc)")
    lint.add_argument("--mode", action="append", metavar="MODE",
                      help="interprocedural mode: inline, summary, none "
                           "(repeatable; default all three)")
    lint.add_argument("--size", default="small", choices=("small", "default"))
    lint.add_argument("--strict", action="store_true",
                      help="exit 1 on warnings too, not just errors")
    lint.add_argument("--no-sanitize", action="store_true",
                      help="skip the dynamic trace-replay cross-check")
    lint.add_argument("--self-test", action="store_true",
                      help="also run the mutation self-test (seed marking "
                           "defects; the lint must catch every one)")
    lint.add_argument("--json", metavar="PATH",
                      help="also write the report(s) as JSON")
    lint.add_argument("--modelcheck", action="store_true",
                      help="also run the bounded-exhaustive protocol "
                           "verification (default config grid)")
    lint.add_argument("--cache-dir", metavar="PATH",
                      help="artifact cache location (default ~/.cache/repro "
                           "or $REPRO_CACHE_DIR)")
    lint.add_argument("--no-cache", action="store_true",
                      help="do not read or write the artifact cache")

    mck = sub.add_parser("modelcheck",
                         help="bounded-exhaustive protocol verification "
                              "(TPI timetags or Tardis leases)")
    mck.add_argument("--scheme", choices=("tpi", "tardis"), default="tpi",
                     help="protocol to verify: the 1996 TPI timetags or "
                          "the Tardis lease protocol (default tpi)")
    mck.add_argument("--procs", type=int, metavar="N",
                     help="processors (2..4); with any bounds flag set, a "
                          "single config replaces the default grid")
    mck.add_argument("--lines", type=int, metavar="N",
                     help="cache lines / shared arrays (1..3)")
    mck.add_argument("--words", type=int, metavar="N",
                     help="words per line (1..4)")
    mck.add_argument("--k", type=int, metavar="BITS",
                     help="timetag/timestamp width in bits (tpi 1..4, "
                          "tardis 2..4)")
    mck.add_argument("--epochs", type=int, metavar="N",
                     help="tpi only: epoch bound (1..64; 2^k epochs = one "
                          "counter wrap; the default grid forces >= 2 wraps)")
    mck.add_argument("--lease", type=int, metavar="N",
                     help="tardis only: read-lease length in timestamp "
                          "units (1..2^(k-1)-1)")
    mck.add_argument("--max-ts", type=int, metavar="N", dest="max_ts",
                     help="tardis only: logical-time bound (1..64; the "
                          "default grid reaches >= 2 rebases per config)")
    mck.add_argument("--strict", action="store_true",
                     help="exit 1 on warnings too, not just errors")
    mck.add_argument("--self-test", action="store_true",
                     help="also seed known protocol bugs; every one must "
                          "produce a counterexample")
    mck.add_argument("--no-replay", action="store_true",
                     help="skip replaying counterexamples through the "
                          "production TpiScheme")
    mck.add_argument("--json", metavar="PATH",
                     help="also write the report as JSON")
    mck.add_argument("--cache-dir", metavar="PATH",
                     help="artifact cache location (default ~/.cache/repro "
                          "or $REPRO_CACHE_DIR)")
    mck.add_argument("--no-cache", action="store_true",
                     help="do not read or write the artifact cache")

    cch = sub.add_parser("cache", help="inspect or clear the artifact cache")
    cch.add_argument("action", choices=("stats", "clear"))
    cch.add_argument("--cache-dir", metavar="PATH",
                     help="cache location (default ~/.cache/repro "
                          "or $REPRO_CACHE_DIR)")

    srv = sub.add_parser("serve",
                         help="run the simulation-as-a-service HTTP server")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=8089,
                     help="bind port (default 8089; 0 = ephemeral)")
    srv.add_argument("--dispatchers", type=int, default=2, metavar="N",
                     help="concurrent cold-request dispatches (default 2); "
                          "each dispatch may fan out over --jobs workers")
    srv.add_argument("--timeout", type=float, metavar="SECONDS",
                     help="per-job wall-clock bound inside the executor")
    srv.add_argument("--drain-timeout", type=float, default=30.0,
                     metavar="SECONDS",
                     help="how long shutdown waits for in-flight requests")
    srv.add_argument("--peers", metavar="LIST",
                     help="comma-separated peer cache roots (directories "
                          "and/or http://host:port serve endpoints) for "
                          "read-through; default $REPRO_CACHE_PEERS")
    _add_runtime_args(srv)
    return parser


def _apply_engine(args) -> None:
    """Validate ``--engine``/``--jit`` and export them to the runtime.

    The env vars are how the choices reach machine configs built deep
    inside experiments, and worker processes inherit them.  An unknown
    engine name, an unknown ``--jit`` mode, or a garbage pre-existing
    ``$REPRO_JIT`` value is a one-line usage error (exit 2), not a
    traceback.
    """
    import os

    choice = getattr(args, "engine", None)
    if choice:
        from repro.sim.engine import ENGINE_NAMES

        if choice not in ENGINE_NAMES:
            raise ReproError(f"unknown engine {choice!r}; choose from "
                             f"{', '.join(ENGINE_NAMES)} (see docs/PERF.md)")
        os.environ["REPRO_ENGINE"] = choice
    from repro.sim.jit import JIT_MODES, parse_jit_env

    jit = getattr(args, "jit", None)
    if jit is not None:
        if jit not in JIT_MODES:
            raise ReproError(f"unknown jit mode {jit!r}; choose from "
                             f"{', '.join(JIT_MODES)} (see docs/PERF.md)")
        os.environ["REPRO_JIT"] = jit
    else:
        parse_jit_env()  # reject a garbage $REPRO_JIT before doing any work


def _runtime_from_args(args):
    """Resolve the shared runtime flags into (jobs, cache, telemetry)."""
    from repro.runtime import ArtifactCache, Telemetry

    _apply_engine(args)
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    return args.jobs, cache, Telemetry()


def _finish_run(args, telemetry) -> None:
    if args.report:
        telemetry.report().save(args.report)


def _cmd_list() -> int:
    print("workloads:  " + " ".join(workload_names()))
    print("schemes:    " + " ".join(SCHEME_NAMES))
    print("experiments:")
    for experiment in experiment_ids():
        print(f"  {experiment}")
    return 0


def _cmd_show(args) -> int:
    program = build_workload(args.workload, size=args.size)
    marking = None if args.no_marking else mark_program(program)
    print(format_program(program, marking))
    return 0


def _cmd_simulate(args) -> int:
    from repro.runtime import write_json

    schemes = args.scheme or ["base", "sc", "tpi", "hw"]
    machine = default_machine().with_(n_procs=args.procs)
    jobs, cache, telemetry = _runtime_from_args(args)
    results = simulate_all(build_workload(args.workload, size=args.size),
                           schemes, machine, jobs=jobs, cache=cache,
                           telemetry=telemetry)
    for scheme in schemes:
        print(results[scheme].summary())
        print()
    if args.json:
        from repro.serve.payloads import simulate_payload

        write_json(simulate_payload(results, telemetry), args.json)
    _finish_run(args, telemetry)
    return 0


def _cmd_experiment(args) -> int:
    from repro.runtime import write_json

    targets = experiment_ids() if args.experiment == "all" else [args.experiment]
    plot = getattr(args, "plot", None)
    if plot is not None and "fig5_storage" not in targets:
        raise ReproError("--plot is only supported for fig5_storage")
    jobs, cache, telemetry = _runtime_from_args(args)
    collected = []
    for experiment in targets:
        result = run_experiment(experiment, size=args.size, jobs=jobs,
                                cache=cache, telemetry=telemetry)
        print(result.render())
        if args.chart:
            print()
            print(result.render_bars(args.chart))
        print()
        collected.append(result.to_dict())
    if plot is not None:
        from repro.experiments import fig5_storage

        print(f"wrote {fig5_storage.plot(plot or fig5_storage.DEFAULT_PLOT_PATH)}")
    if args.json:
        write_json(collected if len(collected) > 1 else collected[0],
                   args.json)
    _finish_run(args, telemetry)
    return 0


def _cmd_sweep(args) -> int:
    from repro.runtime import write_json
    from repro.sim.sweep import sweep_from_specs

    try:
        sweep = sweep_from_specs(build_workload(args.workload, size=args.size),
                                 args.axis,
                                 schemes=tuple(args.scheme or ("tpi", "hw")))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    jobs, cache, telemetry = _runtime_from_args(args)
    points = sweep.run(jobs=jobs, cache=cache, telemetry=telemetry)
    label_names = [name for name, _ in sweep._axes]
    header = "  ".join(f"{n:>8}" for n in label_names)
    print(f"{header}  {'scheme':>7}  {'cycles':>9}  {'miss %':>7}  {'misslat':>8}")
    for point in points:
        labels = "  ".join(f"{point.labels[n]:>8}" for n in label_names)
        r = point.result
        print(f"{labels}  {point.scheme:>7}  {r.exec_cycles:>9}  "
              f"{100 * r.miss_rate:>7.2f}  {r.avg_miss_latency:>8.1f}")
    if args.json:
        from repro.serve.payloads import sweep_payload

        write_json(sweep_payload(points, telemetry), args.json)
    _finish_run(args, telemetry)
    return 0


def _write_json_output(payload, path: str) -> None:
    """``--json PATH`` writer: an unwritable path is a usage error.

    ``write_json`` opens the file lazily, so a bad directory, a
    permission problem, or a full disk would otherwise surface as an
    OSError traceback; users of ``--json`` deserve the same one-line
    exit-2 treatment as any other bad argument.
    """
    from repro.runtime import write_json

    try:
        write_json(payload, path)
    except OSError as exc:
        raise ReproError(
            f"cannot write --json output to {path!r}: "
            f"{exc.strerror or exc}") from None


def _cmd_lint(args) -> int:
    from repro.analysis import lint_workload, mutation_self_test
    from repro.analysis.diagnostics import EXIT_USAGE
    from repro.analysis.lint import _normalize_modes, _normalize_schemes
    from repro.runtime import ArtifactCache

    known = workload_names()
    names = list(known) if args.workload == "all" else [args.workload]
    for name in names:
        if name not in known:
            print(f"error: unknown workload {name!r}; choose from "
                  f"{' '.join(known)}", file=sys.stderr)
            return EXIT_USAGE
    try:
        modes = _normalize_modes(args.mode)
        schemes = _normalize_schemes(args.scheme)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    payloads = []
    code = 0
    for name in names:
        report = lint_workload(name, size=args.size, modes=modes,
                               schemes=schemes,
                               sanitize=not args.no_sanitize, cache=cache)
        print(report.render())
        code = max(code, report.exit_code(strict=args.strict))
        payload = report.to_dict()
        if args.self_test:
            program = build_workload(name, size=args.size)
            payload["self_test"] = {}
            for mode in modes:
                result = mutation_self_test(program, mode=mode)
                print(result.summary())
                for mutation in result.missed:
                    print(f"  MISSED {mutation.kind} at site {mutation.site} "
                          f"(expected {mutation.expected_rule})")
                    code = max(code, 1)
                payload["self_test"][mode.value] = {
                    "seeded_errors": result.seeded_errors,
                    "caught_errors": result.caught_errors,
                    "missed": [m.site for m in result.missed],
                }
        payloads.append(payload)
        print()
    if args.modelcheck:
        from repro.analysis import modelcheck_report

        report = modelcheck_report(cache=cache)
        print(report.render())
        print()
        code = max(code, report.exit_code(strict=args.strict))
        payloads.append(report.to_dict())
    if args.json:
        _write_json_output(payloads if len(payloads) > 1 else payloads[0],
                           args.json)
    return code


def _cmd_modelcheck(args) -> int:
    from repro.analysis.diagnostics import EXIT_USAGE
    from repro.runtime import ArtifactCache

    tardis = args.scheme == "tardis"
    if not tardis and (args.lease is not None or args.max_ts is not None):
        print("error: --lease/--max-ts apply to --scheme tardis only",
              file=sys.stderr)
        return EXIT_USAGE
    if tardis and args.epochs is not None:
        print("error: --epochs applies to --scheme tpi only (the tardis "
              "horizon is --max-ts)", file=sys.stderr)
        return EXIT_USAGE
    if tardis:
        from repro.analysis import (
            TardisModelConfig as config_cls,
            tardis_modelcheck_report as report_fn,
            tardis_self_test as self_test_fn,
        )

        bounds = {"n_procs": args.procs, "n_lines": args.lines,
                  "line_words": args.words, "timestamp_bits": args.k,
                  "lease": args.lease, "max_ts": args.max_ts}
    else:
        from repro.analysis import (
            ModelConfig as config_cls,
            modelcheck_report as report_fn,
            protocol_self_test as self_test_fn,
        )

        bounds = {"n_procs": args.procs, "n_lines": args.lines,
                  "line_words": args.words, "timetag_bits": args.k,
                  "max_epochs": args.epochs}
    custom: Dict[str, int] = {key: value for key, value in bounds.items()
                              if value is not None}
    try:
        configs = [config_cls(**custom)] if custom else None
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    report = report_fn(configs, replay=not args.no_replay, cache=cache)
    print(report.render())
    for line in report.meta.get("results", ()):
        print("  " + line)
    code = report.exit_code(strict=args.strict)
    payload = report.to_dict()
    if args.self_test:
        result = self_test_fn(replay=not args.no_replay)
        print(result.summary())
        for mutation in result.mutations:
            if mutation.caught:
                note = ""
                if mutation.refuted_by_production is True:
                    note = ", production refuted the trace (as it must)"
                elif mutation.refuted_by_production is False:
                    note = ", but production CONFIRMED the trace"
                    code = max(code, 1)
                print(f"  caught {mutation.name} on {mutation.config_label}"
                      f"{note}")
            else:
                print(f"  MISSED {mutation.name} "
                      f"({mutation.states} states searched)")
                code = max(code, 1)
        payload["self_test"] = {
            "seeded": result.seeded,
            "caught": result.caught,
            "missed": [m.name for m in result.missed],
        }
    if args.json:
        _write_json_output(payload, args.json)
    return code


def _cmd_cache(args) -> int:
    from repro.runtime import ArtifactCache

    cache = ArtifactCache(args.cache_dir)
    if args.action == "stats":
        print(cache.stats().render())
    else:
        removed = cache.clear()
        print(f"removed {removed} cached artifact(s) from {cache.root}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.runtime import ShardedCache, Telemetry
    from repro.serve import ServeConfig, ServeServer, SimulationService

    _apply_engine(args)
    peers = (None if args.peers is None
             else [p.strip() for p in args.peers.split(",") if p.strip()])
    cache = None if args.no_cache else ShardedCache(args.cache_dir,
                                                    peers=peers)
    config = ServeConfig(jobs=args.jobs, dispatchers=args.dispatchers,
                         timeout=args.timeout)
    telemetry = Telemetry()
    service = SimulationService(cache=cache, config=config,
                                telemetry=telemetry)
    server = ServeServer(service, host=args.host, port=args.port,
                         drain_timeout=args.drain_timeout)

    async def run() -> None:
        try:
            await server.start()
        except OSError as exc:
            raise ReproError(
                f"cannot bind {args.host}:{args.port}: "
                f"{exc.strerror or exc}") from None
        peers_note = (f", peers {','.join(p.name for p in cache.peers)}"
                      if cache is not None and cache.peers else "")
        print(f"repro serve listening on http://{args.host}:{server.port} "
              f"(jobs={config.jobs}, dispatchers={config.dispatchers}, "
              f"cache={'off' if cache is None else cache.root}{peers_note})",
              flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await server.serve_until_stopped()

    asyncio.run(run())
    _finish_run(args, telemetry)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "list": lambda: _cmd_list(),
        "show": lambda: _cmd_show(args),
        "simulate": lambda: _cmd_simulate(args),
        "experiment": lambda: _cmd_experiment(args),
        "sweep": lambda: _cmd_sweep(args),
        "lint": lambda: _cmd_lint(args),
        "modelcheck": lambda: _cmd_modelcheck(args),
        "cache": lambda: _cmd_cache(args),
        "serve": lambda: _cmd_serve(args),
    }
    try:
        return handlers[args.command]()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
