"""Independent staleness oracle: per-element value-set interpretation.

This is a second, deliberately simple implementation of the paper's
stale-reference semantics, used to *verify* the production marking pass
(:mod:`repro.compiler.marking`).  Where the production pass reasons
symbolically over regular sections, the oracle enumerates: outer opened
loops, DOALL iterations, and inner serial loops are unrolled concretely
(up to a cap), scalars are tracked as small sets of possible values, and
array references become explicit sets of flat element indices.  Whenever
enumeration is impossible (unbounded symbol, capped set, SUMMARY-widened
callee) the affected set degrades to an *approximate* whole-array set and
every conclusion drawn from it is downgraded from "definite" to "may".

Per shared read site the oracle reports (:class:`SiteVerdict`):

* ``tpi_may`` / ``tpi_def`` — the read may / definitely-under-the-shared-
  may-execute-semantics terminates a stale reference sequence when marking
  validation (writes and prior Time-Reads) is applied;
* ``sc_may`` / ``sc_def`` — the same with SC validation (writes only; a
  bypassing read does not validate);
* ``strict_may`` / ``strict_def`` — a same-epoch concurrent writer is
  possible, so a Time-Read here must be *strict*.

"Definite" conclusions use exact element sets on both sides of a
conflict.  Because every exact oracle set is a subset of the production
pass's corresponding section, a definite oracle staleness that the
production pass marked as an ordinary read is a genuine soundness
disagreement — the basis for the ``TPI001``/``SC001`` lint errors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.compiler.epochs import EpochGraph, StaticEpoch, build_epoch_graph
from repro.compiler.marking import InterprocMode, MarkingOptions
from repro.ir.expr import Affine, Cond
from repro.ir.program import (
    Array,
    ArrayRef,
    Call,
    CriticalSection,
    If,
    Loop,
    Node,
    Program,
    ScalarAssign,
    Sharing,
    Statement,
    walk,
)

SET_CAP = 2048
"""Maximum size of a scalar value set before it widens to unknown."""

ELEM_CAP = 8192
"""Maximum size of an element-index set per reference visit."""

LOOP_CAP = 1024
"""Maximum trip count enumerated for a single loop."""

COMBO_CAP = 1024
"""Maximum concrete outer-loop-index combinations per epoch."""

_MULTI = object()  # sentinel: an element written by >1 distinct iteration


@dataclass(frozen=True)
class Val:
    """A set of possible integer values; ``values=None`` means unknown.

    ``exact=False`` marks the set as a (possibly proper) over-approximation
    of the dynamically possible values.
    """

    values: Optional[FrozenSet[int]]
    exact: bool

    @property
    def singleton(self) -> Optional[int]:
        if self.values is not None and len(self.values) == 1:
            return next(iter(self.values))
        return None


TOP = Val(None, False)


def _val_of(value: int) -> Val:
    return Val(frozenset((value,)), True)


def _val_from_interval(interval: Tuple[Optional[int], Optional[int]]) -> Val:
    lo, hi = interval
    if lo is None or hi is None or hi - lo + 1 > SET_CAP or hi < lo:
        return TOP
    return Val(frozenset(range(lo, hi + 1)), False)


def eval_affine(expr: Affine, env: Dict[str, Val]) -> Val:
    """Evaluate an affine expression over value sets."""
    values: FrozenSet[int] = frozenset((expr.const,))
    exact = True
    for symbol, coeff in expr.terms:
        val = env.get(symbol, TOP)
        if val.values is None:
            return TOP
        combined = frozenset(a + coeff * b for a in values for b in val.values)
        if len(combined) > SET_CAP:
            return TOP
        values = combined
        exact = exact and val.exact
    return Val(values, exact)


def _eval_cond(cond: Cond, env: Dict[str, Val]) -> Optional[bool]:
    """True/False when the comparison is decided for every possible value
    pair; None when undecided (or too large to check)."""
    lhs = eval_affine(cond.lhs, env)
    rhs = eval_affine(cond.rhs, env)
    if lhs.values is None or rhs.values is None:
        return None
    if len(lhs.values) * len(rhs.values) > SET_CAP:
        return None
    op = Cond._OPS[cond.op]
    outcomes = {op(a, b) for a in lhs.values for b in rhs.values}
    if len(outcomes) == 1:
        return outcomes.pop()
    return None


def _merge_envs(base: Dict[str, Val], then_env: Dict[str, Val],
                else_env: Dict[str, Val]) -> Dict[str, Val]:
    merged: Dict[str, Val] = {}
    for symbol in set(then_env) | set(else_env):
        t = then_env.get(symbol, TOP)
        e = else_env.get(symbol, TOP)
        if t == e:
            merged[symbol] = t
        elif t.values is None or e.values is None:
            merged[symbol] = TOP
        else:
            union = t.values | e.values
            merged[symbol] = (Val(union, False) if len(union) <= SET_CAP
                              else TOP)
    del base
    return merged


@dataclass(frozen=True)
class Elems:
    """A set of flat (row-major) element indices of one array.

    ``indices=None`` means "any element" (the whole array, approximately).
    """

    indices: Optional[FrozenSet[int]]
    exact: bool

    @property
    def single(self) -> Optional[int]:
        if (self.exact and self.indices is not None
                and len(self.indices) == 1):
            return next(iter(self.indices))
        return None


ELEMS_TOP = Elems(None, False)


def elements_of(array: Array, sub_vals: List[Val]) -> Elems:
    """Flatten per-dimension value sets into element indices.

    Out-of-range subscript values are dropped (and mark the set
    approximate — the production pass clamps instead of dropping).
    """
    dims: List[List[int]] = []
    exact = True
    for val, extent in zip(sub_vals, array.shape):
        if val.values is None:
            return ELEMS_TOP
        in_range = [v for v in val.values if 0 <= v < extent]
        if len(in_range) != len(val.values):
            exact = False
        dims.append(sorted(in_range))
        exact = exact and val.exact
    total = 1
    for dim in dims:
        total *= len(dim)
        if total > ELEM_CAP:
            return ELEMS_TOP
    strides = []
    acc = 1
    for extent in reversed(array.shape):
        strides.append(acc)
        acc *= extent
    strides.reverse()
    flat = frozenset(sum(v * s for v, s in zip(combo, strides))
                     for combo in itertools.product(*dims))
    return Elems(flat, exact)


class Footprint:
    """Element-set write footprint of one array (exact + approximate)."""

    __slots__ = ("exact", "approx", "approx_top")

    def __init__(self) -> None:
        self.exact: Set[int] = set()
        self.approx: Set[int] = set()
        self.approx_top = False

    def add(self, elems: Elems) -> None:
        if elems.indices is None:
            self.approx_top = True
        elif elems.exact:
            self.exact |= elems.indices
        else:
            self.approx |= elems.indices

    def merge(self, other: "Footprint") -> None:
        self.exact |= other.exact
        self.approx |= other.approx
        self.approx_top = self.approx_top or other.approx_top

    def overlap(self, elems: Elems) -> Tuple[bool, bool]:
        """(may_overlap, definite_overlap) against a read's element set."""
        if elems.indices is None:
            may = bool(self.exact or self.approx or self.approx_top)
            return may, False
        definite = elems.exact and bool(elems.indices & self.exact)
        may = (definite or self.approx_top
               or bool(elems.indices & (self.exact | self.approx)))
        return may, definite

    def __bool__(self) -> bool:
        return bool(self.exact or self.approx or self.approx_top)


class IterWriters:
    """Per-element writer iterations within one parallel-epoch instance."""

    __slots__ = ("by_elem", "approx", "approx_top")

    def __init__(self) -> None:
        self.by_elem: Dict[int, object] = {}  # elem -> iteration | _MULTI
        self.approx: Set[int] = set()
        self.approx_top = False

    def add(self, elems: Elems, iteration: Optional[int]) -> None:
        if elems.indices is None:
            self.approx_top = True
            return
        if elems.exact and iteration is not None:
            for elem in elems.indices:
                seen = self.by_elem.get(elem)
                if seen is None:
                    self.by_elem[elem] = iteration
                elif seen is not _MULTI and seen != iteration:
                    self.by_elem[elem] = _MULTI
        else:
            self.approx |= elems.indices

    def conflict(self, elems: Elems, iteration: Optional[int],
                 same_iter_is_race: bool) -> Tuple[bool, bool]:
        """(may, definite) cross-iteration write conflict with a read."""
        if elems.indices is None:
            may = bool(self.by_elem or self.approx or self.approx_top)
            return may, False
        may = definite = False
        for elem in elems.indices:
            writer = self.by_elem.get(elem)
            if writer is None:
                continue
            if (writer is _MULTI or same_iter_is_race or iteration is None
                    or writer != iteration):
                may = True
            if elems.exact and (writer is _MULTI or same_iter_is_race
                                or (iteration is not None
                                    and writer != iteration)):
                definite = True
        if not may and (self.approx_top or elems.indices & self.approx):
            may = True
        return may, definite


@dataclass
class SiteVerdict:
    """Oracle conclusions for one shared read site (OR over all visits)."""

    site: int
    array: str = ""
    visits: int = 0
    tpi_may: bool = False
    tpi_def: bool = False
    sc_may: bool = False
    sc_def: bool = False
    strict_may: bool = False
    strict_def: bool = False
    where: str = ""  # label of the first epoch a staleness was seen in

    def record(self, tpi_may: bool, tpi_def: bool, sc_may: bool, sc_def: bool,
               strict_may: bool, strict_def: bool, where: str) -> None:
        self.visits += 1
        if (tpi_may or sc_may) and not (self.tpi_may or self.sc_may):
            self.where = where
        self.tpi_may = self.tpi_may or tpi_may
        self.tpi_def = self.tpi_def or tpi_def
        self.sc_may = self.sc_may or sc_may
        self.sc_def = self.sc_def or sc_def
        self.strict_may = self.strict_may or strict_may
        self.strict_def = self.strict_def or strict_def


@dataclass(frozen=True)
class SiteInfo:
    """Source location of a reference site."""

    site: int
    procedure: str
    text: str
    is_read: bool


def site_table(program: Program) -> Dict[int, SiteInfo]:
    """Map every reference site id to its defining procedure and text."""
    table: Dict[int, SiteInfo] = {}
    for proc in program.procedures.values():
        for node in walk(proc.body):
            if not isinstance(node, Statement):
                continue
            for ref in node.reads:
                table.setdefault(ref.site,
                                 SiteInfo(ref.site, proc.name, str(ref), True))
            for ref in node.writes:
                table.setdefault(ref.site,
                                 SiteInfo(ref.site, proc.name, str(ref), False))
    return table


@dataclass
class OracleAnalysis:
    """The oracle's output: one verdict per visited shared read site."""

    program_name: str
    opts: MarkingOptions
    verdicts: Dict[int, SiteVerdict]
    sites: Dict[int, SiteInfo]
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def fully_enumerated(self) -> bool:
        """Did every loop/scalar/element set stay below the caps?"""
        return not any(self.stats.get(k) for k in
                       ("capped_loops", "capped_combos", "capped_sets"))


def _effectively_shared(array: Array, opts: MarkingOptions) -> bool:
    return array.sharing is Sharing.SHARED or not opts.assume_no_migration


def _iter_range(lo: Val, hi: Val, step: int) -> Optional[List[int]]:
    """Concrete iteration values when both bounds are pinned and small."""
    lo0, hi0 = lo.singleton, hi.singleton
    if lo0 is None or hi0 is None:
        return None
    if step > 0:
        values = list(range(lo0, hi0 + 1, step))
    else:
        values = list(range(lo0, hi0 - 1, step))
    if len(values) > LOOP_CAP:
        return None
    return values


def _assigned_scalars(body: Tuple[Node, ...]) -> Set[str]:
    return {node.name for node in walk(body) if isinstance(node, ScalarAssign)}


_Key = Tuple[str, int]  # (array name, flat element index)


class _Walker:
    """One pass over one epoch instance; phase is 'collect' or 'decide'."""

    def __init__(self, analysis: "_Analyzer", epoch: StaticEpoch,
                 env: Dict[str, Val], phase: str,
                 writers: Optional[Dict[str, IterWriters]],
                 sources: Optional[Dict[str, Footprint]] = None):
        self.a = analysis
        self.epoch = epoch
        self.env = dict(env)
        self.phase = phase
        self.writers = writers
        self.sources = sources or {}
        self.in_critical = 0
        self.inline_depth = 0
        self.iteration: Optional[int] = None
        self.valid_w: Set[_Key] = set()
        self.valid_tr: Set[_Key] = set()

    # -------------------------------------------------------------- driving

    def run(self) -> None:
        if self.epoch.parallel:
            loop = self.epoch.doall
            assert loop is not None
            lo = eval_affine(loop.lo, self.env)
            hi = eval_affine(loop.hi, self.env)
            values = _iter_range(lo, hi, loop.step)
            if values is None:
                self.a.stats["capped_loops"] = (
                    self.a.stats.get("capped_loops", 0) + 1)
                self.env[loop.index] = self._approx_index(lo, hi)
                self.iteration = None
                self._body(loop.body)
                return
            entry_env = dict(self.env)
            for value in values:
                # Each DOALL iteration is an independent task: fresh scalar
                # environment and fresh validated sets.
                self.env = dict(entry_env)
                self.env[loop.index] = _val_of(value)
                self.iteration = value
                self.valid_w.clear()
                self.valid_tr.clear()
                self._body(loop.body)
        else:
            self._body(self.epoch.nodes)

    @staticmethod
    def _approx_index(lo: Val, hi: Val) -> Val:
        if lo.values is None or hi.values is None:
            return TOP
        return _val_from_interval((min(lo.values), max(hi.values)))

    def _body(self, nodes: Tuple[Node, ...]) -> None:
        for node in nodes:
            self._node(node)

    def _node(self, node: Node) -> None:
        if isinstance(node, Statement):
            for ref in node.reads:
                self._ref(ref, is_write=False)
            for ref in node.writes:
                self._ref(ref, is_write=True)
        elif isinstance(node, ScalarAssign):
            self.env[node.name] = eval_affine(node.expr, self.env)
        elif isinstance(node, Loop):
            self._loop(node)
        elif isinstance(node, If):
            self._if(node)
        elif isinstance(node, CriticalSection):
            self.in_critical += 1
            self.valid_w.clear()
            self.valid_tr.clear()
            self._body(node.body)
            self.valid_w.clear()
            self.valid_tr.clear()
            self.in_critical -= 1
        elif isinstance(node, Call):
            boundary = self.a.opts.interproc is not InterprocMode.INLINE
            if boundary:
                self.valid_w.clear()
                self.valid_tr.clear()
            self.inline_depth += 1
            self._body(self.a.program.procedures[node.callee].body)
            self.inline_depth -= 1
            if boundary:
                self.valid_w.clear()
                self.valid_tr.clear()

    def _loop(self, loop: Loop) -> None:
        lo = eval_affine(loop.lo, self.env)
        hi = eval_affine(loop.hi, self.env)
        values = _iter_range(lo, hi, loop.step)
        if values is None:
            self.a.stats["capped_loops"] = (
                self.a.stats.get("capped_loops", 0) + 1)
            # One approximate pass: pre-weaken every scalar the body can
            # assign (a single pass would otherwise under-rotate inductions).
            for name in _assigned_scalars(loop.body):
                self.env[name] = TOP
            self.env[loop.index] = self._approx_index(lo, hi)
            self._body(loop.body)
            return
        for value in values:
            self.env[loop.index] = _val_of(value)
            self._body(loop.body)

    def _if(self, node: If) -> None:
        decided = _eval_cond(node.cond, self.env)
        if decided is True:
            self._body(node.then)
            return
        if decided is False:
            self._body(node.els)
            return
        saved_env = dict(self.env)
        saved_w, saved_tr = set(self.valid_w), set(self.valid_tr)
        self._body(node.then)
        then_env = self.env
        then_w, then_tr = self.valid_w, self.valid_tr
        self.env = dict(saved_env)
        self.valid_w, self.valid_tr = set(saved_w), set(saved_tr)
        self._body(node.els)
        self.env = _merge_envs(saved_env, then_env, self.env)
        self.valid_w = then_w & self.valid_w
        self.valid_tr = then_tr & self.valid_tr

    # ------------------------------------------------------------ reference

    def _ref(self, ref: ArrayRef, is_write: bool) -> None:
        array = self.a.program.arrays[ref.array]
        opts = self.a.opts
        if (opts.interproc is InterprocMode.SUMMARY and self.inline_depth > 0):
            elems = ELEMS_TOP
        else:
            sub_vals = [eval_affine(sub, self.env) for sub in ref.subscripts]
            elems = elements_of(array, sub_vals)
            if elems.indices is None:
                self.a.stats["capped_sets"] = (
                    self.a.stats.get("capped_sets", 0) + 1)

        if self.phase == "collect":
            if is_write and _effectively_shared(array, opts):
                self.a.foot(self.epoch.id, ref.array).add(elems)
                if self.writers is not None:
                    self.writers.setdefault(
                        ref.array, IterWriters()).add(elems, self.iteration)
            return

        if is_write:
            single = elems.single
            if single is not None:
                self.valid_w.add((ref.array, single))
            return
        if not _effectively_shared(array, opts):
            return
        self._decide_read(ref, elems)

    def _decide_read(self, ref: ArrayRef, elems: Elems) -> None:
        opts = self.a.opts
        verdict = self.a.verdict(ref)
        where = self.epoch.label or f"epoch {self.epoch.id}"

        if self.in_critical:
            may, definite = self.a.any_writes_overlap(ref.array, elems)
            if may:
                # Forced strict Time-Read under a lock; no validation.
                verdict.record(may, definite, may, definite, may, definite,
                               where)
                return

        if opts.interproc is InterprocMode.NONE:
            stale_may, stale_def = self.a.any_writes_overlap(ref.array, elems)
            strict_may, strict_def = stale_may, stale_def
        else:
            same_may = same_def = False
            epoch_writers = (self.writers.get(ref.array)
                             if self.writers is not None else None)
            if self.epoch.parallel and epoch_writers is not None:
                same_may, same_def = epoch_writers.conflict(
                    elems, self.iteration,
                    same_iter_is_race=not opts.assume_no_migration)
            cross = self.sources.get(ref.array)
            cross_may, cross_def = (cross.overlap(elems) if cross is not None
                                    else (False, False))
            stale_may = same_may or cross_may
            stale_def = same_def or cross_def
            strict_may, strict_def = same_may, same_def

        tpi_may, tpi_def = stale_may, stale_def
        sc_may, sc_def = stale_may, stale_def
        key: Optional[_Key] = None
        single = elems.single
        if single is not None:
            key = (ref.array, single)
        if (stale_may and opts.intra_task_reuse and opts.assume_no_migration
                and key is not None):
            if key in self.valid_w or key in self.valid_tr:
                tpi_may = tpi_def = False
            if key in self.valid_w:
                sc_may = sc_def = False
        if key is not None and tpi_may:
            # A (TPI) Time-Read validates the word it fetches.
            self.valid_tr.add(key)
        verdict.record(tpi_may, tpi_def, sc_may, sc_def,
                       tpi_may and strict_may, tpi_def and strict_def, where)


class _Analyzer:
    """Drives collection and decision over every epoch instance."""

    def __init__(self, program: Program, params: Optional[Dict[str, int]],
                 opts: MarkingOptions, graph: Optional[EpochGraph]):
        self.program = program
        self.opts = opts
        self.graph = graph or build_epoch_graph(program, params)
        self.param_env = program.bind_params(params)
        self.stats: Dict[str, int] = {}
        self.foots: Dict[int, Dict[str, Footprint]] = {}
        self.any_writes: Dict[str, Footprint] = {}
        self.verdicts: Dict[int, SiteVerdict] = {}

    # ------------------------------------------------------------- plumbing

    def foot(self, epoch_id: int, array: str) -> Footprint:
        return self.foots.setdefault(epoch_id, {}).setdefault(array,
                                                              Footprint())

    def verdict(self, ref: ArrayRef) -> SiteVerdict:
        return self.verdicts.setdefault(
            ref.site, SiteVerdict(site=ref.site, array=ref.array))

    def any_writes_overlap(self, array: str, elems: Elems) -> Tuple[bool, bool]:
        foot = self.any_writes.get(array)
        if foot is None:
            return False, False
        return foot.overlap(elems)

    # ------------------------------------------------- instance enumeration

    def cases(self, epoch: StaticEpoch) -> List[Dict[str, Val]]:
        """Entry environments, one per concrete outer-index combination."""
        base: Dict[str, Val] = {name: _val_of(value)
                                for name, value in self.param_env.items()}
        pins: List[Dict[str, Val]] = [{}]
        for ctx in epoch.outer:
            expanded: List[Dict[str, Val]] = []
            overflow = False
            for pin in pins:
                env = dict(base)
                env.update(pin)
                lo = eval_affine(ctx.lo, env)
                hi = eval_affine(ctx.hi, env)
                values = _iter_range(lo, hi, ctx.step)
                if values is None:
                    overflow = True
                    break
                for value in values:
                    child = dict(pin)
                    child[ctx.index] = _val_of(value)
                    expanded.append(child)
                if len(expanded) > COMBO_CAP:
                    overflow = True
                    break
            if overflow:
                # Give up on concrete combinations: approximate every outer
                # index by its interval and analyze one blended instance.
                self.stats["capped_combos"] = (
                    self.stats.get("capped_combos", 0) + 1)
                pins = [{}]
                env = dict(base)
                for outer_ctx in epoch.outer:
                    lo = eval_affine(outer_ctx.lo, env)
                    hi = eval_affine(outer_ctx.hi, env)
                    approx = _Walker._approx_index(lo, hi)
                    pins[0][outer_ctx.index] = approx
                    env[outer_ctx.index] = approx
                break
            pins = expanded
        envs: List[Dict[str, Val]] = []
        for pin in pins:
            env = dict(base)
            # Weak scalars (and any other symbol the partitioner ranged)
            # enter as approximate interval sets; pins override.
            for symbol, interval in epoch.ranges.bindings.items():
                if symbol not in env:
                    env[symbol] = _val_from_interval(interval)
            env.update(pin)
            for name, affine in epoch.scalars.exact.items():
                env[name] = eval_affine(affine, env)
            envs.append(env)
        return envs

    # --------------------------------------------------------------- phases

    def run(self) -> OracleAnalysis:
        all_cases = {epoch.id: self.cases(epoch)
                     for epoch in self.graph.epochs}
        writers: Dict[Tuple[int, int], Dict[str, IterWriters]] = {}
        for epoch in self.graph.epochs:
            for case_index, env in enumerate(all_cases[epoch.id]):
                per_case: Optional[Dict[str, IterWriters]] = (
                    {} if epoch.parallel else None)
                if per_case is not None:
                    writers[(epoch.id, case_index)] = per_case
                _Walker(self, epoch, env, "collect", per_case).run()
                self.stats["instances"] = self.stats.get("instances", 0) + 1

        for foots in self.foots.values():
            for array, foot in foots.items():
                self.any_writes.setdefault(array, Footprint()).merge(foot)

        for epoch in self.graph.epochs:
            sources = self._sources(epoch)
            for case_index, env in enumerate(all_cases[epoch.id]):
                _Walker(self, epoch, env, "decide",
                        writers.get((epoch.id, case_index)), sources).run()

        self.stats["sites"] = len(self.verdicts)
        self.stats["epochs"] = len(self.graph.epochs)
        return OracleAnalysis(program_name=self.program.name, opts=self.opts,
                              verdicts=self.verdicts,
                              sites=site_table(self.program),
                              stats=self.stats)

    def _sources(self, epoch: StaticEpoch) -> Dict[str, Footprint]:
        """Stale sources: footprints of epochs that may precede this one
        with a possibly-different writing processor."""
        merged: Dict[str, Footprint] = {}
        for other in self.graph.epochs:
            if self.graph.distance(other.id, epoch.id) is None:
                continue
            if not (other.parallel or epoch.parallel
                    or not self.opts.assume_no_migration):
                continue  # serial -> serial: both on the master processor
            for array, foot in self.foots.get(other.id, {}).items():
                merged.setdefault(array, Footprint()).merge(foot)
        return merged


def analyze_staleness(program: Program,
                      params: Optional[Dict[str, int]] = None,
                      opts: Optional[MarkingOptions] = None,
                      graph: Optional[EpochGraph] = None) -> OracleAnalysis:
    """Run the oracle over a program; see the module docstring."""
    return _Analyzer(program, params, opts or MarkingOptions(), graph).run()
