"""Bounded-exhaustive model checking of the reconstructed TPI protocol.

The TPI semantics this repo simulates (k-bit timetags, per-array ``W``
registers, the two-phase reset) are a *reconstruction* from the ISCA-1996
paper.  The staleness oracle and the dynamic sanitizer defend the
compiler marking; the hypothesis suites reach the timetag wrap-around
corners only probabilistically.  This module closes the remaining gap:
it expresses the protocol as a small set of **guarded actions** over an
explicit abstract state and enumerates *every* reachable state of tiny
configurations, asserting the staleness-safety invariant on each read.

Crucially, the transition rules are not a transcription of the
simulator: every protocol decision — the ``(R - tag) mod 2^k <=
min(R - W[a], 2^k - 1)`` freshness test, the R-1 fill rule, the
``W[a] := R`` / ``R + 1`` epilogue update, and the reset sweep's phase
geometry — is taken from :mod:`repro.coherence.tpi_rules`, the same pure
functions :class:`~repro.coherence.tpi.TpiScheme`, the batch kernels,
and :meth:`~repro.memsys.cache.Cache.two_phase_reset` execute.  A
verification run therefore covers the production logic itself.

Abstract state
--------------
``(R, plan, W, writers, caches)`` where ``R`` is the epoch counter
(full index; the k-bit hardware view is taken inside the shared rules),
``plan`` gives each array's write mode for the current epoch (``none`` /
``excl`` — a legal DOALL, each word written by at most one task — /
``racy`` — the illegal-DOALL write-write-conflict case), ``W`` is the
per-array last-write-epoch register file, ``writers`` enforces the
``excl`` single-writer-per-word guard, and each processor's cache maps
lines to per-word ``(valid, timetag, stale-since)`` triples.  The
``stale-since`` component is *ghost state*: the epoch of the earliest
write the cached copy fails to reflect (``FRESH`` when none).

Guarded actions
---------------
* ``advance`` — nondeterministically pick the next epoch's write plan;
  apply the compiler's epilogue ``W`` updates for the plan just ended
  (may-write contract: updates fire whether or not a write occurred),
  bump ``R``, and run the two-phase reset sweep where the shared phase
  rule says the counter crossed a boundary.
* ``write p w`` — guarded by the plan (and the single-writer rule under
  ``excl``); write-allocates, stamps the word's tag ``R``, and marks
  every other processor's valid copy stale-since-``R``.
* ``read p w ts|strict`` — a timestamp Time-Read is admissible only for
  arrays without a possible same-epoch writer (otherwise the compiler
  would have emitted a strict Time-Read, which is always admissible); a
  valid word consults the shared hit rule, a miss fills/refreshes under
  the shared R-1 fill-tag rule.  Plain (unmarked) reads are out of
  scope: their freshness is the compiler's claim, checked by the oracle
  and lint — the model checker verifies the *hardware* protocol under a
  sound marking.

Invariant
---------
**Staleness safety**: a read hit must never return a word whose ghost
stale-since epoch predates the current epoch — the cached copy misses a
write that committed at an earlier epoch barrier.  (Same-epoch races in
``racy`` plans are data races the paper's model never promises to
order; the dynamic sanitizer draws the same line.)

Every counterexample trace can be replayed through the *production*
:class:`~repro.coherence.tpi.TpiScheme` (:func:`replay_counterexample`)
to confirm the production code exhibits the same stale read — or refute
it, which would mean the model has drifted from the implementation.
The protocol mutation self-test (:func:`protocol_self_test`) seeds
known bugs into the rule set and gates on 100% counterexample
detection, mirroring the lint oracle's mutation gate.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, Report
from repro.coherence import tpi_rules
from repro.common.errors import ConfigError

MODELCHECK_VERSION = 1
"""Bump on any change to the abstract state or action semantics."""

# Plan modes per array, per epoch.
PLAN_NONE = 0  # the epoch cannot write the array
PLAN_EXCL = 1  # legal DOALL: at most one task writes any given word
PLAN_RACY = 2  # illegal DOALL: cross-iteration write-write conflicts

_PLAN_NAMES = {PLAN_NONE: "-", PLAN_EXCL: "excl", PLAN_RACY: "racy"}

FRESH = -1  # stale-since sentinel: the copy reflects the latest write
NO_WRITER = -1

_INVALID_WORD = (0, 0, FRESH)  # canonical invalid-word state


# --------------------------------------------------------------------- config


@dataclass(frozen=True)
class ModelConfig:
    """Bounds of one exhaustive enumeration.

    Kept deliberately tiny: the protocol's per-word state machine does
    not grow new behaviours with size, only more interleavings of the
    same ones, so 2-3 processors and 1-2 lines of 1-2 words already
    exercise every rule (both reset phases included, given enough
    epochs for two counter wrap-arounds).
    """

    n_procs: int = 2
    n_lines: int = 1
    line_words: int = 1
    timetag_bits: int = 2
    max_epochs: int = 10
    allow_racy: bool = True

    def __post_init__(self) -> None:
        if not 2 <= self.n_procs <= 4:
            raise ConfigError("modelcheck needs 2..4 processors")
        if not 1 <= self.n_lines <= 3:
            raise ConfigError("modelcheck supports 1..3 lines")
        if not 1 <= self.line_words <= 4:
            raise ConfigError("modelcheck supports 1..4 words per line")
        if not 1 <= self.timetag_bits <= 4:
            raise ConfigError("modelcheck supports 1..4 timetag bits")
        if not 1 <= self.max_epochs <= 64:
            raise ConfigError("modelcheck supports 1..64 epochs")

    @property
    def modulus(self) -> int:
        return 1 << self.timetag_bits

    @property
    def phase_size(self) -> int:
        return 1 << (self.timetag_bits - 1)

    @property
    def n_words(self) -> int:
        return self.n_lines * self.line_words

    @property
    def wraps(self) -> int:
        """Counter wrap-arounds the epoch bound forces."""
        return self.max_epochs // self.modulus

    @property
    def plan_choices(self) -> Tuple[Tuple[int, ...], ...]:
        modes = ((PLAN_NONE, PLAN_EXCL, PLAN_RACY) if self.allow_racy
                 else (PLAN_NONE, PLAN_EXCL))
        return tuple(itertools.product(modes, repeat=self.n_lines))

    @property
    def label(self) -> str:
        return (f"p{self.n_procs}.l{self.n_lines}.w{self.line_words}"
                f".k{self.timetag_bits}.e{self.max_epochs}")

    def to_dict(self) -> Dict[str, Any]:
        return {"n_procs": self.n_procs, "n_lines": self.n_lines,
                "line_words": self.line_words,
                "timetag_bits": self.timetag_bits,
                "max_epochs": self.max_epochs,
                "allow_racy": self.allow_racy}


#: The CI gate: every config forces >= 2 counter wrap-arounds, covering
#: 2-3 processors, 1-2 lines, 1-2 words per line, and k = 2 and 3.  The
#: two-line config drops the racy plan mode (covered by the one-line
#: configs) to keep its state space inside the CI time budget; with it,
#: the whole grid enumerates in well under a minute.
DEFAULT_CONFIGS: Tuple[ModelConfig, ...] = (
    ModelConfig(n_procs=2, n_lines=1, line_words=1, timetag_bits=2,
                max_epochs=10),
    ModelConfig(n_procs=2, n_lines=1, line_words=2, timetag_bits=2,
                max_epochs=10),
    ModelConfig(n_procs=3, n_lines=1, line_words=1, timetag_bits=2,
                max_epochs=9),
    ModelConfig(n_procs=2, n_lines=2, line_words=1, timetag_bits=2,
                max_epochs=8, allow_racy=False),
    ModelConfig(n_procs=2, n_lines=1, line_words=1, timetag_bits=3,
                max_epochs=17),
)


# ---------------------------------------------------------------- rule table


@dataclass(frozen=True)
class ProtocolRules:
    """The protocol decisions the checker consults, as swappable slots.

    The defaults bind the production functions from
    :mod:`repro.coherence.tpi_rules` — checking with ``PRODUCTION_RULES``
    verifies the code the simulator runs.  The mutation self-test
    substitutes deliberately broken variants.
    """

    name: str = "production"
    timestamp_hit: Callable[..., bool] = tpi_rules.timestamp_hit
    strict_hit: Callable[..., bool] = tpi_rules.strict_hit
    fill_tag: Callable[..., int] = tpi_rules.fill_tag
    w_register_update: Callable[..., int] = tpi_rules.w_register_update
    crossed_phase_bounds: Callable[..., Optional[Tuple[int, int]]] = (
        tpi_rules.crossed_phase_bounds)
    reset_selects: Callable[..., bool] = tpi_rules.reset_selects


PRODUCTION_RULES = ProtocolRules()


def _mutant_skip_second_phase(old_epoch, new_epoch, modulus, phase_size):
    bounds = tpi_rules.crossed_phase_bounds(old_epoch, new_epoch, modulus,
                                            phase_size)
    if bounds is not None and bounds[0] == 0:
        return None  # the sweep re-entering the low tag phase never fires
    return bounds


def protocol_mutants() -> Tuple[ProtocolRules, ...]:
    """Known protocol bugs the checker must detect (the self-test seeds)."""
    return (
        replace(PRODUCTION_RULES, name="drop-racy-bump",
                w_register_update=lambda epoch, racy: epoch),
        replace(PRODUCTION_RULES, name="fill-stamps-current",
                fill_tag=lambda epoch, accessed, stamp_current: epoch),
        replace(PRODUCTION_RULES, name="skip-second-reset-phase",
                crossed_phase_bounds=_mutant_skip_second_phase),
        replace(PRODUCTION_RULES, name="window-off-by-one",
                timestamp_hit=lambda epoch, tag, w_reg, modulus:
                tpi_rules.word_age(epoch, tag, modulus)
                <= tpi_rules.time_read_window(epoch, w_reg, modulus) + 1),
    )


# ------------------------------------------------------------ search results


@dataclass(frozen=True)
class Violation:
    """One staleness-safety counterexample."""

    config: ModelConfig
    trace: Tuple[Tuple, ...]  # state-changing actions from the initial state
    proc: int
    word: int
    mark: str
    tag: int
    stale_since: int
    epoch: int

    def render(self) -> List[str]:
        """Human-readable trace, one action per line."""
        lines: List[str] = []
        for action in self.trace:
            if action[0] == "advance":
                plan = ", ".join(f"A{a}:{_PLAN_NAMES[m]}"
                                 for a, m in enumerate(action[1])
                                 if m != PLAN_NONE) or "no writes"
                lines.append(f"epoch {action[2]} begins [{plan}]")
            elif action[0] == "write":
                lines.append(f"  p{action[1]} writes w{action[2]}")
            else:
                lines.append(f"  p{action[1]} {action[3]} Time-Read "
                             f"w{action[2]} -> miss, line fill")
        lines.append(f"  p{self.proc} {self.mark} Time-Read w{self.word} "
                     f"-> HIT (tag {self.tag}, R {self.epoch}) on a copy "
                     f"stale since epoch {self.stale_since}  "
                     f"** staleness-safety violation")
        return lines


@dataclass
class CheckResult:
    """Outcome of exhausting one bounded configuration."""

    config: ModelConfig
    rules: str
    states: int = 0
    transitions: int = 0
    reads_checked: int = 0
    violations: List[Violation] = field(default_factory=list)
    truncated: bool = False
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.truncated

    def summary(self) -> str:
        verdict = ("OK" if self.ok else
                   f"{len(self.violations)} counterexample(s)"
                   + (", TRUNCATED" if self.truncated else ""))
        return (f"modelcheck {self.config.label} [{self.rules}]: "
                f"{self.states} states, {self.transitions} transitions, "
                f"{self.reads_checked} read hits checked, "
                f"{self.config.wraps} wrap(s) in {self.elapsed:.2f}s "
                f"-> {verdict}")


# ------------------------------------------------------------ the enumerator

W_NONE_SENTINEL = -(10 ** 9)  # matches the production never-written W init


def _initial_state(config: ModelConfig):
    return (0,
            (PLAN_NONE,) * config.n_lines,
            (W_NONE_SENTINEL,) * config.n_lines,
            (NO_WRITER,) * config.n_words,
            ((None,) * config.n_lines,) * config.n_procs)


def _sweep_line(line, bounds, rules, modulus):
    """Apply the reset sweep to one resident line; None if nothing survives."""
    if line is None:
        return None
    swept = tuple(
        _INVALID_WORD
        if word[0] and rules.reset_selects(word[1], bounds[0], bounds[1],
                                           modulus)
        else word
        for word in line)
    if all(word[0] == 0 for word in swept):
        return None  # behaviourally identical to an absent line
    return swept


def _fill_line(line, accessed_offset, epoch, stamp_current, rules):
    """Fill/refresh one line, per the production fill and refresh rules.

    A fetched line refreshes every word that is invalid or older than the
    incoming fill tag (words the task validated this epoch keep their
    newer tags), and the accessed word always takes fresh data.  Fresh
    words copy current memory, so their ghost stale-since clears.
    """
    base_tag = rules.fill_tag(epoch, False, stamp_current)
    words = []
    for valid, tag, since in line:
        if not valid or tag < base_tag:
            words.append((1, base_tag, FRESH))
        else:
            words.append((valid, tag, since))
    words[accessed_offset] = (1, rules.fill_tag(epoch, True, stamp_current),
                              FRESH)
    return tuple(words)


def _install_line(line_words_count, accessed_offset, epoch, stamp_current,
                  rules):
    base_tag = rules.fill_tag(epoch, False, stamp_current)
    words = [(1, base_tag, FRESH)] * line_words_count
    words[accessed_offset] = (1, rules.fill_tag(epoch, True, stamp_current),
                              FRESH)
    return tuple(words)


def _successors(state, config: ModelConfig, rules: ProtocolRules,
                plan_choices: Tuple[Tuple[int, ...], ...]
                ) -> Iterator[Tuple[Tuple, Optional[Tuple], Optional[Tuple]]]:
    """Yield ``(action, next_state, violation_info)`` triples.

    A read *hit* leaves the state unchanged: it yields no successor, only
    (on an invariant breach) a violation triple.  ``violation_info`` is
    ``(proc, word, mark, tag, stale_since)``.
    """
    R, plan, wregs, writers, caches = state
    n_procs, n_lines = config.n_procs, config.n_lines
    line_words, modulus = config.line_words, config.modulus

    # -- advance: end the current epoch, pick the next epoch's write plan.
    if R < config.max_epochs:
        new_wregs = tuple(
            rules.w_register_update(R, mode == PLAN_RACY)
            if mode != PLAN_NONE else w
            for w, mode in zip(wregs, plan))
        bounds = rules.crossed_phase_bounds(R, R + 1, modulus,
                                            config.phase_size)
        if bounds is None:
            swept = caches
        else:
            swept = tuple(
                tuple(_sweep_line(line, bounds, rules, modulus)
                      for line in cache)
                for cache in caches)
        cleared = (NO_WRITER,) * config.n_words
        for next_plan in plan_choices:
            yield (("advance", next_plan, R + 1),
                   (R + 1, next_plan, new_wregs, cleared, swept), None)

    if R == 0:
        return  # accesses happen inside epochs only

    # -- writes, guarded by the epoch's plan.
    for word in range(config.n_words):
        line_idx, offset = divmod(word, line_words)
        mode = plan[line_idx]
        if mode == PLAN_NONE:
            continue
        for proc in range(n_procs):
            if mode == PLAN_EXCL and writers[word] not in (NO_WRITER, proc):
                continue  # a legal DOALL has one writer per word
            new_caches = []
            for p, cache in enumerate(caches):
                line = cache[line_idx]
                if p == proc:
                    if line is None:
                        # Write-allocate: fetch the line, then stamp the
                        # written word with the current epoch.
                        line = _install_line(line_words, offset, R, False,
                                             rules)
                        line = line[:offset] + ((1, R, FRESH),) \
                            + line[offset + 1:]
                    else:
                        line = line[:offset] + ((1, R, FRESH),) \
                            + line[offset + 1:]
                elif line is not None:
                    valid, tag, since = line[offset]
                    if valid:
                        # Ghost: this copy now misses the new write.
                        stale_since = R if since == FRESH else since
                        line = line[:offset] + ((valid, tag, stale_since),) \
                            + line[offset + 1:]
                new_cache = cache[:line_idx] + (line,) + cache[line_idx + 1:]
                new_caches.append(new_cache)
            new_writers = writers
            if mode == PLAN_EXCL:
                new_writers = writers[:word] + (proc,) + writers[word + 1:]
            yield (("write", proc, word),
                   (R, plan, wregs, new_writers, tuple(new_caches)), None)

    # -- reads: timestamp Time-Reads where no same-epoch writer is
    # possible, strict Time-Reads anywhere.
    for word in range(config.n_words):
        line_idx, offset = divmod(word, line_words)
        for mark in ("ts", "strict"):
            if mark == "ts" and plan[line_idx] != PLAN_NONE:
                continue  # the compiler would emit a strict Time-Read
            for proc in range(n_procs):
                line = caches[proc][line_idx]
                hit = False
                if line is not None and line[offset][0]:
                    _, tag, since = line[offset]
                    if mark == "strict":
                        hit = bool(rules.strict_hit(R, tag, modulus))
                    else:
                        hit = bool(rules.timestamp_hit(
                            R, tag, wregs[line_idx], modulus))
                if hit:
                    if since != FRESH and since < R:
                        yield (("read", proc, word, mark), None,
                               (proc, word, mark, tag, since))
                    else:
                        yield (("read", proc, word, mark), None, None)
                    continue
                stamp_current = mark == "ts"
                if line is None:
                    new_line = _install_line(line_words, offset, R,
                                             stamp_current, rules)
                else:
                    new_line = _fill_line(line, offset, R, stamp_current,
                                          rules)
                cache = caches[proc]
                new_cache = cache[:line_idx] + (new_line,) \
                    + cache[line_idx + 1:]
                new_caches = caches[:proc] + (new_cache,) + caches[proc + 1:]
                yield (("read", proc, word, mark),
                       (R, plan, wregs, writers, new_caches), None)


def _trace_to(parents, state) -> Tuple[Tuple, ...]:
    actions: List[Tuple] = []
    while True:
        link = parents[state]
        if link is None:
            break
        state, action = link
        actions.append(action)
    return tuple(reversed(actions))


def check_config(config: ModelConfig,
                 rules: ProtocolRules = PRODUCTION_RULES, *,
                 max_violations: int = 1,
                 max_states: int = 2_000_000) -> CheckResult:
    """Exhaustively enumerate every reachable state of one configuration.

    Breadth-first, so the first counterexample found has a minimal
    action trace.  ``max_states`` is a runaway backstop far above any
    in-bounds configuration; hitting it marks the result ``truncated``
    (the claim of exhaustiveness is then void and reported as such).
    """
    start = time.perf_counter()
    result = CheckResult(config=config, rules=rules.name)
    init = _initial_state(config)
    plan_choices = config.plan_choices
    parents: Dict[Tuple, Optional[Tuple]] = {init: None}
    frontier = deque([init])
    while frontier:
        if len(parents) > max_states:
            result.truncated = True
            break
        state = frontier.popleft()
        for action, nxt, breach in _successors(state, config, rules,
                                               plan_choices):
            result.transitions += 1
            if action[0] == "read" and nxt is None and breach is None:
                result.reads_checked += 1
            if breach is not None:
                result.reads_checked += 1
                proc, word, mark, tag, since = breach
                result.violations.append(Violation(
                    config=config, trace=_trace_to(parents, state) + (action,),
                    proc=proc, word=word, mark=mark, tag=tag,
                    stale_since=since, epoch=state[0]))
                if len(result.violations) >= max_violations:
                    frontier.clear()
                    break
                continue
            if nxt is not None and nxt not in parents:
                parents[nxt] = (state, action)
                frontier.append(nxt)
    result.states = len(parents)
    result.elapsed = time.perf_counter() - start
    return result


# --------------------------------------------------- production-replay check


@dataclass(frozen=True)
class ReplayOutcome:
    """Production verdict on one model counterexample.

    ``confirmed`` — the production :class:`TpiScheme` returned the same
    stale read (its shadow-memory version check tripped), so the model's
    counterexample is a genuine protocol bug.  Otherwise the production
    code *refuted* the trace (it missed, or hit fresh data): expected
    when the checked rules were mutants, and evidence of model drift
    when they were the production rules.
    """

    confirmed: bool
    final_kind: str
    mismatches: Tuple[str, ...]
    detail: str

    @property
    def refuted(self) -> bool:
        return not self.confirmed


_TS_SITE, _STRICT_SITE, _WRITE_SITE = 0, 1, 2


def _replay_rig(config: ModelConfig):
    """A production SimContext shaped like the model: one shared array
    per line, a cache that holds every line, hand-crafted marking."""
    from repro.common.config import CacheConfig, MachineConfig, TpiConfig
    from repro.compiler.epochs import EpochGraph
    from repro.compiler.marking import Marking, RefMark
    from repro.ir import ProgramBuilder
    from repro.memsys.memory import ShadowMemory
    from repro.memsys.network import KruskalSnirNetwork
    from repro.trace.layout import MemoryLayout

    n_sets = 1
    while n_sets < config.n_lines:
        n_sets *= 2
    machine = MachineConfig(
        n_procs=config.n_procs,
        cache=CacheConfig(size_bytes=n_sets * config.line_words * 4,
                          line_words=config.line_words),
        tpi=TpiConfig(timetag_bits=config.timetag_bits),
    )
    builder = ProgramBuilder("modelcheck-replay")
    for array in range(config.n_lines):
        builder.array(f"A{array}", (config.line_words,))
    with builder.procedure("main"):
        pass
    program = builder.build()
    layout = MemoryLayout(program, config.n_procs, config.line_words)
    epoch_writes: Dict[int, Dict[str, bool]] = {}
    for key, chosen_plan in enumerate(config.plan_choices):
        epoch_writes[key] = {f"A{a}": mode == PLAN_RACY
                             for a, mode in enumerate(chosen_plan)
                             if mode != PLAN_NONE}
    marking = Marking(
        tpi={_TS_SITE: RefMark.TIME_READ, _STRICT_SITE: RefMark.TIME_READ,
             _WRITE_SITE: RefMark.READ},
        sc={_TS_SITE: RefMark.TIME_READ, _STRICT_SITE: RefMark.TIME_READ,
            _WRITE_SITE: RefMark.READ},
        graph=EpochGraph(),
        strict_sites={_STRICT_SITE},
        epoch_writes=epoch_writes,
    )
    from repro.coherence.api import SimContext

    return SimContext(machine=machine, marking=marking,
                      shadow=ShadowMemory(layout.total_words),
                      network=KruskalSnirNetwork(machine), layout=layout)


def _model_addr(config: ModelConfig, layout, word: int) -> int:
    line_idx, offset = divmod(word, config.line_words)
    return layout.addr_of(f"A{line_idx}", (offset,))


def replay_counterexample(violation: Violation) -> ReplayOutcome:
    """Drive the production TpiScheme through a counterexample trace.

    The model records only state-changing actions plus the final
    violating read, which maps one-to-one onto production calls:
    ``advance`` becomes ``end_epoch`` (with the ended plan's write key) +
    shadow barrier + ``begin_epoch``; reads and writes become scheme
    accesses at the matching marked sites.  The production shadow
    memory's own coherence check (``check_coherence``) is the staleness
    judge, so confirmation does not depend on the model's ghost state.
    """
    from repro.coherence.api import make_scheme
    from repro.common.errors import SimulationError
    from repro.common.stats import MissKind

    config = violation.config
    ctx = _replay_rig(config)
    scheme = make_scheme("tpi", ctx)
    plan_keys = {chosen: key
                 for key, chosen in enumerate(config.plan_choices)}
    current_plan: Tuple[int, ...] = (PLAN_NONE,) * config.n_lines
    epoch = 0
    mismatches: List[str] = []
    final_kind = "none"
    confirmed = False
    detail = ""
    for index, action in enumerate(violation.trace):
        last = index == len(violation.trace) - 1
        if action[0] == "advance":
            if epoch >= 1:
                scheme.end_epoch(plan_keys[current_plan])
                ctx.shadow.barrier()
            scheme.begin_epoch(epoch, True)
            epoch += 1
            current_plan = action[1]
        elif action[0] == "write":
            _, proc, word = action
            scheme.write(proc, _model_addr(config, ctx.layout, word),
                         _WRITE_SITE, True, False)
        else:
            _, proc, word, mark = action
            site = _TS_SITE if mark == "ts" else _STRICT_SITE
            addr = _model_addr(config, ctx.layout, word)
            try:
                outcome = scheme.read(proc, addr, site, True, False)
            except SimulationError as exc:
                final_kind = "stale-hit"
                if last:
                    confirmed = True
                    detail = f"production confirmed the stale read: {exc}"
                else:
                    mismatches.append(
                        f"step {index}: production already stale ({exc})")
                    detail = "production went stale before the final read"
                break
            hit = outcome.kind is MissKind.HIT
            final_kind = "hit" if hit else outcome.kind.name.lower()
            if last:
                detail = ("production hit fresh data" if hit else
                          f"production missed ({final_kind})")
            elif hit:
                # The model recorded this read because it missed there.
                mismatches.append(
                    f"step {index}: production hit where the model missed")
    return ReplayOutcome(confirmed=confirmed, final_kind=final_kind,
                         mismatches=tuple(mismatches), detail=detail)


# ------------------------------------------------- protocol mutation gate


@dataclass(frozen=True)
class ProtocolMutation:
    """One seeded protocol bug and whether the checker caught it."""

    name: str
    caught: bool
    config_label: str
    states: int
    refuted_by_production: Optional[bool]


@dataclass
class ProtocolSelfTest:
    """Outcome of the protocol mutation self-test."""

    mutations: List[ProtocolMutation] = field(default_factory=list)

    @property
    def seeded(self) -> int:
        return len(self.mutations)

    @property
    def caught(self) -> int:
        return sum(1 for m in self.mutations if m.caught)

    @property
    def missed(self) -> List[ProtocolMutation]:
        return [m for m in self.mutations if not m.caught]

    @property
    def detection_rate(self) -> float:
        return self.caught / self.seeded if self.seeded else 1.0

    def summary(self) -> str:
        return (f"protocol mutation self-test: {self.caught}/{self.seeded} "
                f"seeded protocol bugs produced counterexamples")


#: Small grid for the self-test; every mutant must fall on one of these.
SELF_TEST_CONFIGS: Tuple[ModelConfig, ...] = (
    ModelConfig(n_procs=2, n_lines=1, line_words=1, timetag_bits=2,
                max_epochs=10),
    ModelConfig(n_procs=2, n_lines=1, line_words=2, timetag_bits=2,
                max_epochs=8),
)


def protocol_self_test(configs: Optional[Sequence[ModelConfig]] = None,
                       *, replay: bool = True) -> ProtocolSelfTest:
    """Seed each known protocol bug and require a counterexample.

    Also cross-checks each counterexample against the production
    implementation: a mutant's trace must be *refuted* there (the
    production code does not have the seeded bug), which exercises the
    replay harness in the direction tests cannot fake.
    """
    configs = tuple(configs) if configs is not None else SELF_TEST_CONFIGS
    result = ProtocolSelfTest()
    for mutant in protocol_mutants():
        caught = False
        label = ""
        states = 0
        refuted: Optional[bool] = None
        for config in configs:
            check = check_config(config, mutant)
            states += check.states
            if check.violations:
                caught = True
                label = config.label
                if replay:
                    refuted = replay_counterexample(
                        check.violations[0]).refuted
                break
        result.mutations.append(ProtocolMutation(
            name=mutant.name, caught=caught, config_label=label,
            states=states, refuted_by_production=refuted))
    return result


# ----------------------------------------------------------- report plumbing


def _code_digest() -> str:
    """Digest of the rule and checker sources, mixed into the cache key
    so editing either invalidates previously cached verification runs."""
    digest = hashlib.sha256()
    for source in (tpi_rules.__file__, __file__):
        digest.update(Path(source).read_bytes())
    return digest.hexdigest()


def modelcheck_fingerprint(configs: Sequence[ModelConfig]) -> str:
    """Content key for a cached model-checking report."""
    from repro.runtime.cache import cache_salt
    from repro.runtime.jobs import canonical_json

    payload = canonical_json({
        "salt": cache_salt(),
        "kind": "modelcheck",
        "version": MODELCHECK_VERSION,
        "code": _code_digest(),
        "configs": [config.to_dict() for config in configs],
    })
    return hashlib.sha256(payload.encode()).hexdigest()


def modelcheck_report(configs: Optional[Sequence[ModelConfig]] = None, *,
                      rules: ProtocolRules = PRODUCTION_RULES,
                      max_violations: int = 8,
                      max_states: int = 2_000_000,
                      replay: bool = True,
                      cache=None) -> Report:
    """Run the bounded-exhaustive check and report as lint diagnostics.

    * ``MC001`` (error) per staleness-safety counterexample, its trace in
      ``detail["trace"]`` and the production replay verdict in
      ``detail["replay"]``;
    * ``MC002`` (error) when the production replay *refutes* a
      counterexample found against the production rules — the model has
      drifted from the implementation;
    * ``MC003`` (warning) when a configuration's epoch bound forces
      fewer than two counter wrap-arounds (the corner the check exists
      to cover is then not exercised);
    * ``MC004`` (warning) when the state backstop truncated the search
      (the exhaustiveness claim is void).

    Reports for the production rules flow through the artifact cache
    under the ``modelcheck`` kind, keyed by the bounds *and a digest of
    the rule/checker sources*, so a warm re-verify is a pickle load but
    any semantic edit re-verifies.
    """
    configs = tuple(configs) if configs is not None else DEFAULT_CONFIGS
    key = None
    if cache is not None and rules is PRODUCTION_RULES:
        from repro.runtime.cache import KIND_MODELCHECK

        key = modelcheck_fingerprint(configs)
        cached = cache.load(KIND_MODELCHECK, key)
        if isinstance(cached, Report):
            cached.meta["cache"] = "hit"
            return cached
    report = Report(subject="tpi-protocol", tool="modelcheck")
    report.meta["rules"] = rules.name
    report.meta["configs"] = ",".join(config.label for config in configs)
    total_states = total_transitions = total_reads = 0
    elapsed = 0.0
    results: List[CheckResult] = []
    for config in configs:
        result = check_config(config, rules, max_violations=max_violations,
                              max_states=max_states)
        results.append(result)
        total_states += result.states
        total_transitions += result.transitions
        total_reads += result.reads_checked
        elapsed += result.elapsed
        if config.wraps < 2:
            report.add(Diagnostic(
                "MC003",
                f"{config.label}: {config.max_epochs} epochs force only "
                f"{config.wraps} counter wrap-around(s); the timetag "
                f"recycling corner is not fully exercised",
                detail={"config": config.to_dict()}))
        if result.truncated:
            report.add(Diagnostic(
                "MC004",
                f"{config.label}: state backstop reached after "
                f"{result.states} states; enumeration is not exhaustive",
                detail={"config": config.to_dict()}))
        for violation in result.violations:
            detail: Dict[str, Any] = {
                "config": config.to_dict(),
                "trace": violation.render(),
                "proc": violation.proc,
                "word": violation.word,
                "mark": violation.mark,
                "stale_since": violation.stale_since,
            }
            if replay:
                outcome = replay_counterexample(violation)
                detail["replay"] = ("confirmed" if outcome.confirmed
                                    else "refuted")
                detail["replay_detail"] = outcome.detail
                if outcome.refuted and rules is PRODUCTION_RULES:
                    report.add(Diagnostic(
                        "MC002",
                        f"{config.label}: production TpiScheme refuted the "
                        f"model counterexample ({outcome.detail}); the "
                        f"abstract model has drifted from the implementation",
                        detail={"config": config.to_dict(),
                                "trace": violation.render()}))
            report.add(Diagnostic(
                "MC001",
                f"{config.label}: {violation.mark} Time-Read by "
                f"p{violation.proc} of w{violation.word} at epoch "
                f"{violation.epoch} hits a copy stale since epoch "
                f"{violation.stale_since}",
                epoch=str(violation.epoch), detail=detail))
    report.meta["states"] = total_states
    report.meta["transitions"] = total_transitions
    report.meta["reads_checked"] = total_reads
    report.meta["wraps"] = min(config.wraps for config in configs)
    report.meta["elapsed"] = round(elapsed, 3)
    report.meta["results"] = [r.summary() for r in results]
    if cache is not None and key is not None:
        from repro.runtime.cache import KIND_MODELCHECK

        cache.store(KIND_MODELCHECK, key, report)
        report.meta["cache"] = "miss"
    return report
