"""Coherence lint: diff the production marking against the oracle.

``lint_program`` runs, for every requested :class:`InterprocMode`:

1. structural validation (collect-all mode of :mod:`repro.ir.validate`);
2. the production marking pass and the independent staleness oracle over
   the same epoch graph;
3. a per-site diff for each requested scheme map (``tpi`` / ``sc``):

   * oracle *definitely* stale + production ordinary read →
     ``TPI001``/``SC001`` **error** (soundness);
   * oracle provably fresh at every visit + production Time-Read →
     ``TPI002``/``SC002`` **warning** (precision);
   * oracle approximately may-stale + production ordinary read →
     ``ANA001`` note (cannot distinguish oracle imprecision from a bug);
   * strictness analogues ``TPI003`` (error) / ``TPI004`` (warning);

4. optionally the dynamic sanitizer (:mod:`repro.analysis.sanitizer`):
   every observed stale read at an unmarked site is a confirmed
   ``SAN001`` error, and static findings whose site was dynamically
   observed stale are annotated ``dynamic: confirmed``.

Hardware schemes (``tardis`` / ``snoop``) have no marking map to diff;
requesting them runs the sanitizer alone under the scheme's hardware
freshness model (lease expiry / commit-time invalidation).  Any stale
read the hardware model leaves uncovered is the same ``SAN001`` error,
and the observed stale-read count lands in ``meta["stale.<scheme>"]``.

``lint_workload`` adds the content-addressed artifact cache (kind
``lint``), so repeat lints of an unchanged workload are warm.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Report, Severity
from repro.analysis.oracle import OracleAnalysis, analyze_staleness
from repro.common.config import MachineConfig, default_machine
from repro.compiler.epochs import build_epoch_graph
from repro.compiler.marking import (
    InterprocMode,
    Marking,
    MarkingOptions,
    RefMark,
    mark_program,
)
from repro.ir.program import Program

ALL_MODES: Tuple[InterprocMode, ...] = (
    InterprocMode.INLINE, InterprocMode.SUMMARY, InterprocMode.NONE)
ALL_SCHEMES: Tuple[str, ...] = ("tpi", "sc")

_RULESETS = {
    "tpi": ("TPI001", "TPI002"),
    "sc": ("SC001", "SC002"),
}


def diff_marking(marking: Marking, oracle: OracleAnalysis, scheme: str,
                 mode_label: str,
                 dynamic_stale: Optional[Set[int]] = None) -> List[Diagnostic]:
    """Per-site disagreements between one marking map and the oracle."""
    if scheme not in _RULESETS:
        raise ValueError(f"unknown scheme {scheme!r}; lint checks "
                         f"{'/'.join(sorted(_RULESETS))}")
    under_rule, over_rule = _RULESETS[scheme]
    diagnostics: List[Diagnostic] = []
    for site in sorted(oracle.verdicts):
        verdict = oracle.verdicts[site]
        info = oracle.sites.get(site)
        procedure = info.procedure if info else None
        text = info.text if info else f"site {site}"
        if scheme == "tpi":
            marked = marking.tpi_mark(site) is RefMark.TIME_READ
            may, definite = verdict.tpi_may, verdict.tpi_def
        else:
            marked = marking.sc_mark(site) is RefMark.TIME_READ
            may, definite = verdict.sc_may, verdict.sc_def
        detail = {"mode": mode_label, "scheme": scheme,
                  "visits": verdict.visits}
        tag = f" ({mode_label})"
        if dynamic_stale is not None and (definite or may):
            detail["dynamic"] = ("confirmed" if site in dynamic_stale
                                 else "not-observed")
        if definite and not marked:
            diagnostics.append(Diagnostic(
                under_rule,
                f"{text} may terminate a stale reference sequence but is "
                f"left an ordinary read{tag}",
                procedure=procedure, site=site, epoch=verdict.where or None,
                detail=detail))
        elif may and not marked:
            diagnostics.append(Diagnostic(
                "ANA001",
                f"{text} is approximately may-stale but unmarked; the "
                f"oracle could not enumerate it exactly{tag}",
                procedure=procedure, site=site, epoch=verdict.where or None,
                detail=detail))
        elif marked and not may and verdict.visits:
            diagnostics.append(Diagnostic(
                over_rule,
                f"{text} is provably fresh at every visit but is marked "
                f"{'Time-Read' if scheme == 'tpi' else 'bypassing'}{tag}",
                procedure=procedure, site=site, detail=detail))
        if scheme == "tpi" and marked:
            strict = marking.is_strict(site)
            if verdict.strict_def and not strict:
                diagnostics.append(Diagnostic(
                    "TPI003",
                    f"{text} has a possible same-epoch concurrent writer "
                    f"but its Time-Read is not strict{tag}",
                    procedure=procedure, site=site,
                    epoch=verdict.where or None, detail=detail))
            elif (strict and verdict.tpi_may and not verdict.strict_may
                  and verdict.visits):
                diagnostics.append(Diagnostic(
                    "TPI004",
                    f"{text} is marked strict but no same-epoch writer "
                    f"is possible{tag}",
                    procedure=procedure, site=site, detail=detail))
    return diagnostics


def _normalize_modes(modes: Optional[Iterable[object]]) -> Tuple[InterprocMode, ...]:
    if modes is None:
        return ALL_MODES
    resolved = []
    for mode in modes:
        if isinstance(mode, InterprocMode):
            resolved.append(mode)
        else:
            try:
                resolved.append(InterprocMode(str(mode)))
            except ValueError:
                raise ValueError(
                    f"unknown interprocedural mode {mode!r}; choose from "
                    f"{'/'.join(m.value for m in ALL_MODES)}") from None
    return tuple(resolved)


def _normalize_schemes(schemes: Optional[Iterable[str]]) -> Tuple[str, ...]:
    from repro.analysis.sanitizer import SANITIZER_SCHEMES

    if schemes is None:
        return ALL_SCHEMES
    resolved = tuple(schemes)
    for scheme in resolved:
        if scheme not in SANITIZER_SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; lint checks "
                             f"{'/'.join(SANITIZER_SCHEMES)}")
    return resolved


def lint_program(program: Program, params: Optional[Dict[str, int]] = None,
                 *, modes: Optional[Sequence[object]] = None,
                 schemes: Optional[Sequence[str]] = None,
                 sanitize: bool = True,
                 machine: Optional[MachineConfig] = None,
                 subject: str = "") -> Report:
    """Lint one program: validation + oracle diff (+ dynamic sanitizer)."""
    modes = _normalize_modes(modes)
    schemes = _normalize_schemes(schemes)
    report = Report(subject=subject or program.name)
    report.meta["modes"] = ",".join(m.value for m in modes)
    report.meta["schemes"] = ",".join(schemes)

    from repro.ir.validate import program_diagnostics

    structural = program_diagnostics(program)
    report.extend(structural)
    if any(d.severity is Severity.ERROR for d in structural):
        report.meta["aborted"] = "structural errors"
        return report

    graph = build_epoch_graph(program, params)
    markings: Dict[InterprocMode, Marking] = {}
    oracles: Dict[InterprocMode, OracleAnalysis] = {}
    for mode in modes:
        opts = MarkingOptions(interproc=mode)
        markings[mode] = mark_program(program, params, opts, graph)
        oracles[mode] = analyze_staleness(program, params, opts, graph)

    trace = None
    if sanitize:
        from repro.trace.generate import generate_trace

        trace = generate_trace(program, machine or default_machine(), params)

    soft = tuple(s for s in schemes if s in _RULESETS)
    hardware = tuple(s for s in schemes if s not in _RULESETS)

    sites_checked = 0
    for mode in modes:
        oracle = oracles[mode]
        sites_checked = max(sites_checked, len(oracle.verdicts))
        for scheme in soft:
            dynamic_sites: Optional[Set[int]] = None
            if trace is not None:
                from repro.analysis.sanitizer import (
                    replay_stale_reads,
                    unmarked_stale_sites,
                )

                findings = replay_stale_reads(trace, markings[mode], scheme)
                dynamic_sites = {f.site for f in findings}
                for site, finding in sorted(
                        unmarked_stale_sites(findings).items()):
                    info = oracle.sites.get(site)
                    report.add(Diagnostic(
                        "SAN001",
                        f"{info.text if info else f'site {site}'} read a "
                        f"dynamically stale word (proc {finding.proc}, "
                        f"addr {finding.addr}) at an unmarked site "
                        f"({mode.value}/{scheme})",
                        procedure=info.procedure if info else None,
                        site=site, epoch=finding.epoch_label or None,
                        detail={"mode": mode.value, "scheme": scheme,
                                "epoch_index": finding.epoch}))
            report.extend(diff_marking(markings[mode], oracle, scheme,
                                       mode.value, dynamic_sites))
        if not oracle.fully_enumerated:
            report.meta[f"approx.{mode.value}"] = sum(
                oracle.stats.get(k, 0) for k in
                ("capped_loops", "capped_combos", "capped_sets"))

    # Hardware schemes have no marking to diff: the sanitizer replays
    # the trace under the scheme's own freshness model (mode-agnostic).
    if hardware and trace is not None:
        from repro.analysis.oracle import site_table
        from repro.analysis.sanitizer import (
            replay_stale_reads,
            unmarked_stale_sites,
        )

        any_marking = (markings[modes[0]] if modes
                       else Marking(tpi={}, sc={}, graph=graph))
        sites = site_table(program)
        for scheme in hardware:
            findings = replay_stale_reads(trace, any_marking, scheme)
            report.meta[f"stale.{scheme}"] = len(findings)
            for site, finding in sorted(
                    unmarked_stale_sites(findings).items()):
                info = sites.get(site)
                report.add(Diagnostic(
                    "SAN001",
                    f"{info.text if info else f'site {site}'} read a "
                    f"dynamically stale word (proc {finding.proc}, "
                    f"addr {finding.addr}) the {scheme} hardware model "
                    f"left uncovered",
                    procedure=info.procedure if info else None,
                    site=site, epoch=finding.epoch_label or None,
                    detail={"scheme": scheme,
                            "epoch_index": finding.epoch}))
    report.meta["sites"] = sites_checked
    return report


def lint_fingerprint(program: Program, *, modes: Tuple[InterprocMode, ...],
                     schemes: Tuple[str, ...], sanitize: bool,
                     machine: Optional[MachineConfig],
                     params: Optional[Dict[str, int]]) -> str:
    """Content key for a cached lint report."""
    from repro.runtime.cache import cache_salt
    from repro.runtime.jobs import canonical_json, program_digest

    payload = canonical_json({
        "salt": cache_salt(),
        "kind": "lint",
        "program": program_digest(program),
        "params": params or {},
        "modes": [m.value for m in modes],
        "schemes": list(schemes),
        "sanitize": sanitize,
        "machine": machine or default_machine(),
    })
    return hashlib.sha256(payload.encode()).hexdigest()


def lint_workload(name: str, size: str = "small",
                  *, modes: Optional[Sequence[object]] = None,
                  schemes: Optional[Sequence[str]] = None,
                  sanitize: bool = True,
                  machine: Optional[MachineConfig] = None,
                  cache=None) -> Report:
    """Lint a named workload, optionally through the artifact cache."""
    from repro.workloads import build_workload

    program = build_workload(name, size=size)
    modes = _normalize_modes(modes)
    schemes = _normalize_schemes(schemes)
    key = None
    if cache is not None:
        from repro.runtime.cache import KIND_LINT

        key = lint_fingerprint(program, modes=modes, schemes=schemes,
                               sanitize=sanitize, machine=machine,
                               params=None)
        cached = cache.load(KIND_LINT, key)
        if isinstance(cached, Report):
            cached.meta["cache"] = "hit"
            return cached
    report = lint_program(program, modes=modes, schemes=schemes,
                          sanitize=sanitize, machine=machine, subject=name)
    if cache is not None and key is not None:
        from repro.runtime.cache import KIND_LINT

        cache.store(KIND_LINT, key, report)
        report.meta["cache"] = "miss"
    return report
