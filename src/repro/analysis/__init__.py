"""Static-analysis subsystem: diagnostics, staleness oracle, lint, and
bounded-exhaustive protocol model checking.

Submodules are loaded lazily (PEP 562): :mod:`repro.ir.validate` imports
:mod:`repro.analysis.diagnostics` while the :mod:`repro.ir` package is
still initializing, so an eager import of the oracle (which needs the
fully built compiler and IR) here would create a cycle.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "Diagnostic": "repro.analysis.diagnostics",
    "Report": "repro.analysis.diagnostics",
    "Rule": "repro.analysis.diagnostics",
    "RULES": "repro.analysis.diagnostics",
    "Severity": "repro.analysis.diagnostics",
    "EXIT_CLEAN": "repro.analysis.diagnostics",
    "EXIT_FINDINGS": "repro.analysis.diagnostics",
    "EXIT_USAGE": "repro.analysis.diagnostics",
    "OracleAnalysis": "repro.analysis.oracle",
    "SiteVerdict": "repro.analysis.oracle",
    "analyze_staleness": "repro.analysis.oracle",
    "site_table": "repro.analysis.oracle",
    "diff_marking": "repro.analysis.lint",
    "lint_program": "repro.analysis.lint",
    "lint_workload": "repro.analysis.lint",
    "ALL_MODES": "repro.analysis.lint",
    "ALL_SCHEMES": "repro.analysis.lint",
    "replay_stale_reads": "repro.analysis.sanitizer",
    "unmarked_stale_sites": "repro.analysis.sanitizer",
    "StaleRead": "repro.analysis.sanitizer",
    "mutation_self_test": "repro.analysis.mutate",
    "MutationResult": "repro.analysis.mutate",
    "ModelConfig": "repro.analysis.modelcheck",
    "CheckResult": "repro.analysis.modelcheck",
    "Violation": "repro.analysis.modelcheck",
    "DEFAULT_CONFIGS": "repro.analysis.modelcheck",
    "check_config": "repro.analysis.modelcheck",
    "modelcheck_report": "repro.analysis.modelcheck",
    "protocol_self_test": "repro.analysis.modelcheck",
    "replay_counterexample": "repro.analysis.modelcheck",
    "TardisModelConfig": "repro.analysis.modelcheck_tardis",
    "TardisCheckResult": "repro.analysis.modelcheck_tardis",
    "TardisViolation": "repro.analysis.modelcheck_tardis",
    "TARDIS_DEFAULT_CONFIGS": "repro.analysis.modelcheck_tardis",
    "tardis_check_config": "repro.analysis.modelcheck_tardis",
    "tardis_modelcheck_report": "repro.analysis.modelcheck_tardis",
    "tardis_self_test": "repro.analysis.modelcheck_tardis",
    "replay_tardis_counterexample": "repro.analysis.modelcheck_tardis",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static-analysis aid only
    from repro.analysis.diagnostics import (  # noqa: F401
        EXIT_CLEAN,
        EXIT_FINDINGS,
        EXIT_USAGE,
        RULES,
        Diagnostic,
        Report,
        Rule,
        Severity,
    )
    from repro.analysis.lint import (  # noqa: F401
        ALL_MODES,
        ALL_SCHEMES,
        diff_marking,
        lint_program,
        lint_workload,
    )
    from repro.analysis.modelcheck import (  # noqa: F401
        DEFAULT_CONFIGS,
        CheckResult,
        ModelConfig,
        Violation,
        check_config,
        modelcheck_report,
        protocol_self_test,
        replay_counterexample,
    )
    from repro.analysis.modelcheck_tardis import (  # noqa: F401
        TARDIS_DEFAULT_CONFIGS,
        TardisCheckResult,
        TardisModelConfig,
        TardisViolation,
        replay_tardis_counterexample,
        tardis_check_config,
        tardis_modelcheck_report,
        tardis_self_test,
    )
    from repro.analysis.mutate import MutationResult, mutation_self_test  # noqa: F401
    from repro.analysis.oracle import (  # noqa: F401
        OracleAnalysis,
        SiteVerdict,
        analyze_staleness,
        site_table,
    )
    from repro.analysis.sanitizer import (  # noqa: F401
        StaleRead,
        replay_stale_reads,
        unmarked_stale_sites,
    )


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return __all__
