"""Reusable diagnostics: rules, findings, and renderable reports.

Every check in the analysis subsystem — the structural validator
(:mod:`repro.ir.validate`), the staleness oracle diff
(:mod:`repro.analysis.lint`), and the dynamic sanitizer
(:mod:`repro.analysis.sanitizer`) — reports its findings as
:class:`Diagnostic` values tagged with a :class:`Rule` from the shared
catalogue below, so one CLI (``repro lint``) can render, serialize, and
exit-code them uniformly.

Rule id conventions: ``VALxxx`` structural IR problems, ``TPIxxx`` /
``SCxxx`` marking-map disagreements, ``ANAxxx`` analysis-limit notes,
``SANxxx`` dynamic sanitizer findings, ``MCxxx`` bounded-exhaustive
protocol model-checking findings (:mod:`repro.analysis.modelcheck`).

Exit codes (:meth:`Report.exit_code`): 0 clean, 1 errors (or warnings
under ``--strict``), 2 usage errors (bad workload/scheme names — raised
before any Report exists).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Rule:
    """One named check with a default severity."""

    id: str
    severity: Severity
    title: str


_RULE_DEFS = (
    # Structural validation (repro.ir.validate).
    Rule("VAL001", Severity.ERROR, "entry procedure missing"),
    Rule("VAL002", Severity.ERROR, "call to undefined procedure"),
    Rule("VAL003", Severity.ERROR, "recursive call chain"),
    Rule("VAL004", Severity.ERROR, "reference to undeclared array"),
    Rule("VAL005", Severity.ERROR, "subscript count does not match rank"),
    Rule("VAL006", Severity.ERROR, "reference site id missing"),
    Rule("VAL007", Severity.ERROR, "reference site id reused"),
    Rule("VAL008", Severity.ERROR, "unbound symbol"),
    Rule("VAL009", Severity.ERROR, "nested DOALL"),
    Rule("VAL010", Severity.ERROR, "DOALL inside a critical section"),
    Rule("VAL011", Severity.ERROR, "loop index shadows an enclosing symbol"),
    Rule("VAL012", Severity.ERROR, "unknown node type"),
    # Oracle-vs-marking diffs (repro.analysis.lint).
    Rule("TPI001", Severity.ERROR, "under-marked read (TPI)"),
    Rule("TPI002", Severity.WARNING, "over-marked read (TPI)"),
    Rule("TPI003", Severity.ERROR, "under-strict Time-Read"),
    Rule("TPI004", Severity.WARNING, "over-strict Time-Read"),
    Rule("SC001", Severity.ERROR, "under-marked read (SC)"),
    Rule("SC002", Severity.WARNING, "over-marked read (SC)"),
    Rule("ANA001", Severity.INFO, "imprecisely analyzed site"),
    # Dynamic cross-check (repro.analysis.sanitizer).
    Rule("SAN001", Severity.ERROR, "dynamic stale read at unmarked site"),
    # Bounded-exhaustive protocol verification (repro.analysis.modelcheck).
    Rule("MC001", Severity.ERROR, "staleness-safety violation (model)"),
    Rule("MC002", Severity.ERROR, "model diverges from production TPI"),
    Rule("MC003", Severity.WARNING, "bounds force fewer than two wraps"),
    Rule("MC004", Severity.WARNING, "state enumeration truncated"),
    Rule("MC101", Severity.ERROR, "staleness-safety violation (tardis model)"),
    Rule("MC102", Severity.ERROR, "model diverges from production Tardis"),
    Rule("MC103", Severity.WARNING, "bounds force fewer than two rebases"),
    Rule("MC104", Severity.WARNING, "tardis state enumeration truncated"),
)

RULES: Dict[str, Rule] = {rule.id: rule for rule in _RULE_DEFS}


def rule(rule_id: str) -> Rule:
    """Look up a rule from the catalogue by id."""
    return RULES[rule_id]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a program location.

    ``procedure``/``site``/``epoch`` locate the finding as precisely as the
    producing check can; any of them may be absent.  ``detail`` carries
    machine-readable context (the JSON rendering includes it verbatim).
    """

    rule_id: str
    message: str
    procedure: Optional[str] = None
    site: Optional[int] = None
    epoch: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)
    severity_override: Optional[Severity] = None

    @property
    def rule(self) -> Rule:
        return RULES[self.rule_id]

    @property
    def severity(self) -> Severity:
        return self.severity_override or self.rule.severity

    def location(self) -> str:
        parts = []
        if self.procedure:
            parts.append(self.procedure)
        if self.site is not None:
            parts.append(f"site {self.site}")
        if self.epoch:
            parts.append(f"epoch {self.epoch}")
        return ":".join(parts)

    def format(self) -> str:
        where = self.location()
        prefix = f"{self.severity.value} {self.rule_id}"
        if where:
            prefix += f" [{where}]"
        return f"{prefix}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "title": self.rule.title,
            "message": self.message,
        }
        if self.procedure is not None:
            payload["procedure"] = self.procedure
        if self.site is not None:
            payload["site"] = self.site
        if self.epoch is not None:
            payload["epoch"] = self.epoch
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload


_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass
class Report:
    """An ordered collection of diagnostics plus run metadata.

    ``tool`` names the producing check in the summary line ("lint" for
    the oracle diff, "modelcheck" for the protocol verifier, ...).
    """

    subject: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)
    tool: str = "lint"

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def counts(self) -> Dict[str, int]:
        counts = {s.value: 0 for s in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.value] += 1
        return counts

    def exit_code(self, strict: bool = False) -> int:
        if self.has_errors:
            return EXIT_FINDINGS
        if strict and self.warnings:
            return EXIT_FINDINGS
        return EXIT_CLEAN

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{counts['error']} error(s)", f"{counts['warning']} warning(s)"]
        if counts["info"]:
            parts.append(f"{counts['info']} note(s)")
        head = (f"{self.tool} {self.subject}: " if self.subject
                else f"{self.tool}: ")
        text = head + ", ".join(parts)
        extras = [f"{k}={v}" for k, v in sorted(self.meta.items())
                  if k in ("sites", "modes", "schemes", "cache",
                           "states", "wraps")]
        if extras:
            text += "  (" + ", ".join(extras) + ")"
        return text

    def render(self, show_info: bool = True) -> str:
        lines = [self.summary()]
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (_SEVERITY_ORDER[d.severity],
                           d.rule_id, d.site if d.site is not None else -1))
        for diagnostic in ordered:
            if not show_info and diagnostic.severity is Severity.INFO:
                continue
            lines.append("  " + diagnostic.format())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tool": self.tool,
            "subject": self.subject,
            "counts": self.counts(),
            "meta": dict(self.meta),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
