"""Mutation self-test: is the checker itself trustworthy?

Seeds controlled defects into a correct production marking and asserts the
lint diff reports each one with the right rule at the right site:

* **drop-tpi-mark** — flip one Time-Read back to an ordinary read at a
  site the oracle proves definitely stale → must raise ``TPI001``;
* **drop-sc-mark** — the SC analogue → ``SC001``;
* **drop-strict** — keep the Time-Read but clear its strict flag at a
  site with a definite same-epoch writer → ``TPI003``;
* **spurious-mark** — mark a provably fresh ordinary read, as a widened
  section would → must raise the ``TPI002`` precision warning.

Only definitely-stale (resp. provably-fresh) sites are seeded: dropping a
mark the oracle cannot prove necessary is a legal precision improvement,
not an under-marking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.lint import diff_marking
from repro.analysis.oracle import OracleAnalysis, analyze_staleness
from repro.compiler.marking import (
    InterprocMode,
    Marking,
    MarkingOptions,
    RefMark,
    mark_program,
)
from repro.ir.program import Program


@dataclass(frozen=True)
class Mutation:
    """One seeded defect and whether the lint caught it."""

    kind: str
    site: int
    expected_rule: str
    caught: bool


@dataclass
class MutationResult:
    """Outcome of the self-test over one program and mode."""

    program_name: str
    mode: str
    mutations: List[Mutation] = field(default_factory=list)

    def _of_kind(self, error_kinds: bool) -> List[Mutation]:
        errors = {"drop-tpi-mark", "drop-sc-mark", "drop-strict"}
        return [m for m in self.mutations
                if (m.kind in errors) == error_kinds]

    @property
    def seeded_errors(self) -> int:
        return len(self._of_kind(True))

    @property
    def caught_errors(self) -> int:
        return sum(1 for m in self._of_kind(True) if m.caught)

    @property
    def missed(self) -> List[Mutation]:
        return [m for m in self.mutations if not m.caught]

    @property
    def detection_rate(self) -> float:
        seeded = self.seeded_errors
        return self.caught_errors / seeded if seeded else 1.0

    def summary(self) -> str:
        warn = self._of_kind(False)
        line = (f"mutation self-test {self.program_name} [{self.mode}]: "
                f"{self.caught_errors}/{self.seeded_errors} seeded "
                f"under-markings caught")
        if warn:
            caught = sum(1 for m in warn if m.caught)
            line += f", {caught}/{len(warn)} spurious marks flagged"
        return line


def _mutant(marking: Marking, *, drop_tpi: Optional[int] = None,
            drop_sc: Optional[int] = None, drop_strict: Optional[int] = None,
            add_tpi: Optional[int] = None) -> Marking:
    tpi = dict(marking.tpi)
    sc = dict(marking.sc)
    strict: Set[int] = set(marking.strict_sites)
    if drop_tpi is not None:
        tpi[drop_tpi] = RefMark.READ
        strict.discard(drop_tpi)
    if drop_sc is not None:
        sc[drop_sc] = RefMark.READ
    if drop_strict is not None:
        strict.discard(drop_strict)
    if add_tpi is not None:
        tpi[add_tpi] = RefMark.TIME_READ
    return Marking(tpi=tpi, sc=sc, graph=marking.graph, strict_sites=strict,
                   epoch_writes=marking.epoch_writes, stats=marking.stats)


def _caught(marking: Marking, oracle: OracleAnalysis, scheme: str,
            mode: InterprocMode, rule: str, site: int) -> bool:
    diffs = diff_marking(marking, oracle, scheme, mode.value)
    return any(d.rule_id == rule and d.site == site for d in diffs)


def mutation_self_test(program: Program,
                       params: Optional[Dict[str, int]] = None,
                       mode: InterprocMode = InterprocMode.INLINE,
                       limit: Optional[int] = None) -> MutationResult:
    """Seed defects into a fresh marking of ``program`` and lint each one.

    ``limit`` caps the seeds per mutation kind (for quick smoke runs).
    """
    opts = MarkingOptions(interproc=mode)
    marking = mark_program(program, params, opts)
    oracle = analyze_staleness(program, params, opts)
    result = MutationResult(program_name=program.name, mode=mode.value)

    def seeds(predicate) -> List[int]:
        sites = [site for site in sorted(oracle.verdicts)
                 if predicate(oracle.verdicts[site])]
        return sites[:limit] if limit is not None else sites

    for site in seeds(lambda v: v.tpi_def):
        if marking.tpi_mark(site) is not RefMark.TIME_READ:
            continue  # would already be a TPI001 on the unmutated marking
        mutant = _mutant(marking, drop_tpi=site)
        result.mutations.append(Mutation(
            "drop-tpi-mark", site, "TPI001",
            _caught(mutant, oracle, "tpi", mode, "TPI001", site)))

    for site in seeds(lambda v: v.sc_def):
        if marking.sc_mark(site) is not RefMark.TIME_READ:
            continue
        mutant = _mutant(marking, drop_sc=site)
        result.mutations.append(Mutation(
            "drop-sc-mark", site, "SC001",
            _caught(mutant, oracle, "sc", mode, "SC001", site)))

    for site in seeds(lambda v: v.strict_def):
        if not marking.is_strict(site):
            continue
        mutant = _mutant(marking, drop_strict=site)
        result.mutations.append(Mutation(
            "drop-strict", site, "TPI003",
            _caught(mutant, oracle, "tpi", mode, "TPI003", site)))

    for site in seeds(lambda v: v.visits and not v.tpi_may):
        if marking.tpi_mark(site) is RefMark.TIME_READ:
            continue
        mutant = _mutant(marking, add_tpi=site)
        result.mutations.append(Mutation(
            "spurious-mark", site, "TPI002",
            _caught(mutant, oracle, "tpi", mode, "TPI002", site)))

    return result
