"""Bounded-exhaustive model checking of the Tardis lease protocol.

The TPI checker (:mod:`repro.analysis.modelcheck`) verifies the 1996
timetag protocol; this module does the same for its 2015 descendant,
:class:`~repro.coherence.tardis.TardisScheme`.  The protocol is
expressed as guarded actions over an explicit abstract state and every
reachable state of tiny configurations is enumerated, asserting
staleness safety on each read that *serves cached data* (a lease hit or
a data-less renewal — the two paths where Tardis trusts a copy it did
not just fetch).

As with the TPI checker, the transition rules are not a transcription
of the simulator: every protocol decision — the ``rts >= pts`` lease
hit test, the commutative lease grant, the ``max(pts, mem_rts + 1)``
write ordering, the barrier ``pts`` join, the data-less renewal guard,
and the Tardis 2.0 rebase geometry — is taken from
:mod:`repro.coherence.tardis_rules`, the same pure functions the
reference scheme and the batched kernel execute.

Abstract state
--------------
``(pts, base, mem, vers, floor, caches, rebases)``: per-processor
logical timestamps, the representable-window base, per-line home
``(wts, rts)``, per-word ghost *data versions* (current, and the floor
committed at the last barrier), and per-processor cached copies
``(wts, rts, versions)``.  Timestamps are bounded by ``max_ts`` —
writes that would mint a larger timestamp are pruned, which (with the
rebase clamp) makes the state space finite.  The rebase counter
saturates at 2, so states beyond the second rebase merge.

Guarded actions
---------------
* ``barrier`` — join every ``pts`` to the global max, promote the
  version floor, and rebase (clamping every stored timestamp) when the
  lease frontier would leave the ``2^k`` window.
* ``write p l w`` — re-validate a resident copy whose freshness proof
  is gone (the exclusive-ownership upgrade fetch), then order the write
  after every lease on the line and stamp the whole line current.
* ``read p l w`` — a live lease serves the cached word (checked); an
  expired lease renews data-lessly when the line was provably unwritten
  since the fill (served word checked), else re-fetches.

Invariant
---------
**Staleness safety**: a read served from a cached copy must never
return a word version older than the floor committed at the last
barrier.  Within-epoch staleness is Tardis's whole point (live leases
serve the old value at an earlier logical time) and is not a violation.

Counterexample traces replay through the production
:class:`~repro.coherence.tardis.TardisScheme`
(:func:`replay_tardis_counterexample`); its per-read version oracle is
the judge.  :func:`tardis_self_test` seeds known protocol bugs —
including the write-skips-revalidation bug actually found while
building the scheme — and gates on 100% counterexample detection.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, Report
from repro.coherence import tardis_rules
from repro.common.errors import ConfigError

MODELCHECK_TARDIS_VERSION = 1
"""Bump on any change to the abstract state or action semantics."""


# --------------------------------------------------------------------- config


@dataclass(frozen=True)
class TardisModelConfig:
    """Bounds of one exhaustive enumeration.

    ``max_ts`` bounds logical time: no write may mint a timestamp above
    it.  ``max_ts // 2^k`` is the number of representable windows the
    bound forces the protocol through (each crossing is a rebase), the
    Tardis analogue of the TPI checker's counter wrap-arounds.
    """

    n_procs: int = 2
    n_lines: int = 1
    line_words: int = 1
    timestamp_bits: int = 2
    lease: int = 1
    max_ts: int = 8

    def __post_init__(self) -> None:
        if not 2 <= self.n_procs <= 4:
            raise ConfigError("tardis modelcheck needs 2..4 processors")
        if not 1 <= self.n_lines <= 3:
            raise ConfigError("tardis modelcheck supports 1..3 lines")
        if not 1 <= self.line_words <= 4:
            raise ConfigError("tardis modelcheck supports 1..4 words per line")
        if not 2 <= self.timestamp_bits <= 4:
            raise ConfigError("tardis modelcheck supports 2..4 timestamp bits")
        if not 1 <= self.lease <= (1 << (self.timestamp_bits - 1)) - 1:
            raise ConfigError("lease must fit half the timestamp window")
        if not 1 <= self.max_ts <= 64:
            raise ConfigError("tardis modelcheck supports 1..64 max_ts")

    @property
    def modulus(self) -> int:
        return 1 << self.timestamp_bits

    @property
    def wraps(self) -> int:
        """Representable-window crossings the timestamp bound forces."""
        return self.max_ts // self.modulus

    @property
    def label(self) -> str:
        return (f"p{self.n_procs}.l{self.n_lines}.w{self.line_words}"
                f".k{self.timestamp_bits}.s{self.lease}.t{self.max_ts}")

    def to_dict(self) -> Dict[str, Any]:
        return {"n_procs": self.n_procs, "n_lines": self.n_lines,
                "line_words": self.line_words,
                "timestamp_bits": self.timestamp_bits,
                "lease": self.lease, "max_ts": self.max_ts}


#: The CI gate: every config reaches >= 2 rebases, covering 2-3
#: processors, 1-2 lines, 1-2 words per line, and k = 2 and 3.  The
#: two-line config runs a tighter timestamp bound: its state space is
#: the product of two per-line spaces, and ``max_ts=4`` is the largest
#: bound that stays exhaustive (166k states) while still rebasing twice.
TARDIS_DEFAULT_CONFIGS: Tuple[TardisModelConfig, ...] = (
    TardisModelConfig(n_procs=2, n_lines=1, line_words=1, timestamp_bits=2,
                      lease=1, max_ts=9),
    TardisModelConfig(n_procs=2, n_lines=1, line_words=2, timestamp_bits=2,
                      lease=1, max_ts=8),
    TardisModelConfig(n_procs=3, n_lines=1, line_words=1, timestamp_bits=2,
                      lease=1, max_ts=8),
    TardisModelConfig(n_procs=2, n_lines=2, line_words=1, timestamp_bits=2,
                      lease=1, max_ts=4),
    TardisModelConfig(n_procs=2, n_lines=1, line_words=1, timestamp_bits=3,
                      lease=2, max_ts=16),
)


# ---------------------------------------------------------------- rule table


@dataclass(frozen=True)
class TardisRules:
    """The protocol decisions the checker consults, as swappable slots.

    The defaults bind the production functions from
    :mod:`repro.coherence.tardis_rules`.  ``write_renewal_ok`` is the
    *write path's* revalidation guard — the same production rule, in a
    separate slot so the self-test can break the write path alone (the
    shape of the real bug found while building the scheme).
    """

    name: str = "production"
    lease_hit: Callable[..., bool] = tardis_rules.lease_hit
    lease_grant: Callable[..., int] = tardis_rules.lease_grant
    own_lease: Callable[..., int] = tardis_rules.own_lease
    write_timestamp: Callable[..., int] = tardis_rules.write_timestamp
    pts_join: Callable[..., int] = tardis_rules.pts_join
    renewal_ok: Callable[..., bool] = tardis_rules.renewal_ok
    write_renewal_ok: Callable[..., bool] = tardis_rules.renewal_ok
    rebase_needed: Callable[..., bool] = tardis_rules.rebase_needed
    rebase_base: Callable[..., int] = tardis_rules.rebase_base
    clamp: Callable[..., int] = tardis_rules.clamp


TARDIS_PRODUCTION_RULES = TardisRules()


def tardis_mutants() -> Tuple[TardisRules, ...]:
    """Known protocol bugs the checker must detect (the self-test seeds)."""
    return (
        # Renewal equality without the ``mem_wts > base`` guard: after a
        # rebase, a stale copy and the written home both clamp to the
        # base, equality proves nothing, and the renewal serves old data.
        replace(TARDIS_PRODUCTION_RULES, name="renewal-ignores-base",
                renewal_ok=lambda cached_wts, mem_wts, base:
                cached_wts == mem_wts),
        # The write trusts any resident copy: a write to one word of a
        # line that missed a remote write re-leases its stale siblings.
        # This is the real bug found (and pinned) while building the
        # scheme's write path.
        replace(TARDIS_PRODUCTION_RULES, name="write-skips-revalidate",
                write_renewal_ok=lambda cached_wts, mem_wts, base: True),
        # The home lease frontier is overwritten instead of max-merged:
        # a low-pts reader retracts an earlier reader's longer lease, so
        # a write gets ordered *inside* that still-live lease.
        replace(TARDIS_PRODUCTION_RULES, name="grant-caps-rts",
                lease_grant=lambda pts, mem_rts, lease: pts + lease),
        # Off-by-one hit window: a lease is honoured one timestamp past
        # its expiry — exactly long enough to straddle a barrier join.
        replace(TARDIS_PRODUCTION_RULES, name="lease-off-by-one",
                lease_hit=lambda pts, rts: rts + 1 >= pts),
    )


# ------------------------------------------------------------ search results


@dataclass(frozen=True)
class TardisViolation:
    """One staleness-safety counterexample."""

    config: TardisModelConfig
    trace: Tuple[Tuple, ...]  # state-changing actions from the initial state
    proc: int
    line: int
    word: int
    served: str  # "hit" or "renewal"
    version: int
    floor: int

    def render(self) -> List[str]:
        lines: List[str] = []
        for action in self.trace:
            if action[0] == "barrier":
                note = " + rebase" if action[2] else ""
                lines.append(f"barrier (pts join -> {action[1]}{note})")
            elif action[0] == "write":
                lines.append(f"  p{action[1]} writes l{action[2]}"
                             f".w{action[3]}")
            else:
                how = action[4] if len(action) > 4 else "fetch"
                lines.append(f"  p{action[1]} reads l{action[2]}"
                             f".w{action[3]} -> {how}")
        lines.append(f"  p{self.proc} reads l{self.line}.w{self.word} -> "
                     f"{self.served} serves version {self.version} below "
                     f"the barrier floor {self.floor}  "
                     f"** staleness-safety violation")
        return lines


@dataclass
class TardisCheckResult:
    """Outcome of exhausting one bounded configuration."""

    config: TardisModelConfig
    rules: str
    states: int = 0
    transitions: int = 0
    reads_checked: int = 0
    max_rebases: int = 0
    violations: List[TardisViolation] = field(default_factory=list)
    truncated: bool = False
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.truncated

    def summary(self) -> str:
        verdict = ("OK" if self.ok else
                   f"{len(self.violations)} counterexample(s)"
                   + (", TRUNCATED" if self.truncated else ""))
        return (f"modelcheck-tardis {self.config.label} [{self.rules}]: "
                f"{self.states} states, {self.transitions} transitions, "
                f"{self.reads_checked} served reads checked, "
                f">={self.max_rebases} rebase(s) reached in "
                f"{self.elapsed:.2f}s -> {verdict}")


# ------------------------------------------------------------ the enumerator


def _initial_state(config: TardisModelConfig):
    no_vers = ((0,) * config.line_words,) * config.n_lines
    return ((0,) * config.n_procs,          # pts
            -1,                              # base (production's initial)
            ((0, 0),) * config.n_lines,      # mem (wts, rts)
            no_vers,                         # current data versions
            no_vers,                         # barrier floor versions
            ((None,) * config.n_lines,) * config.n_procs,  # caches
            0)                               # rebases (saturates at 2)


def _successors(state, config: TardisModelConfig, rules: TardisRules
                ) -> Iterator[Tuple[Tuple, Optional[Tuple], Optional[Tuple]]]:
    """Yield ``(action, next_state, violation_info)`` triples.

    A lease-hit read leaves the state unchanged: it yields no successor,
    only (on an invariant breach) a violation triple.  ``violation_info``
    is ``(proc, line, word, served, version, floor)``.
    """
    pts, base, mem, vers, floor, caches, rebases = state
    n_procs, n_lines = config.n_procs, config.n_lines
    line_words, lease, modulus = config.line_words, config.lease, config.modulus

    # -- barrier: join pts, promote the floor, maybe rebase.
    joined = int(rules.pts_join(pts))
    if bool(rules.rebase_needed(joined, lease, base, modulus)):
        new_base = int(rules.rebase_base(joined, modulus))
        new_mem = tuple((int(rules.clamp(w, new_base)),
                         int(rules.clamp(r, new_base))) for w, r in mem)
        new_caches = tuple(
            tuple(None if copy is None
                  else (int(rules.clamp(copy[0], new_base)),
                        int(rules.clamp(copy[1], new_base)), copy[2])
                  for copy in cache)
            for cache in caches)
        barrier_state = ((joined,) * n_procs, new_base, new_mem, vers, vers,
                         new_caches, min(rebases + 1, 2))
        yield ("barrier", joined, True), barrier_state, None
    else:
        barrier_state = ((joined,) * n_procs, base, mem, vers, vers,
                         caches, rebases)
        if barrier_state != state:
            yield ("barrier", joined, False), barrier_state, None

    # -- writes: revalidate a doubtful resident copy, then stamp through.
    for proc in range(n_procs):
        for line in range(n_lines):
            mem_wts, mem_rts = mem[line]
            ts_w = int(rules.write_timestamp(pts[proc], mem_rts))
            if ts_w > config.max_ts:
                continue  # logical-time bound: the enumeration's horizon
            copy = caches[proc][line]
            if copy is not None and bool(rules.write_renewal_ok(
                    copy[0], mem_wts, base)):
                copy_vers = copy[2]  # provably unwritten since the fill
            else:
                copy_vers = vers[line]  # exclusive-ownership upgrade fetch
            new_pts = pts[:proc] + (ts_w,) + pts[proc + 1:]
            new_mem = mem[:line] + ((ts_w, ts_w),) + mem[line + 1:]
            for word in range(line_words):
                bumped = vers[line][word] + 1
                new_line_vers = (vers[line][:word] + (bumped,)
                                 + vers[line][word + 1:])
                new_vers = vers[:line] + (new_line_vers,) + vers[line + 1:]
                new_copy_vers = (copy_vers[:word] + (bumped,)
                                 + copy_vers[word + 1:])
                new_cache = (caches[proc][:line]
                             + ((ts_w, ts_w, new_copy_vers),)
                             + caches[proc][line + 1:])
                new_caches = (caches[:proc] + (new_cache,)
                              + caches[proc + 1:])
                yield (("write", proc, line, word),
                       (new_pts, base, new_mem, new_vers, floor, new_caches,
                        rebases), None)

    # -- reads: hit / data-less renewal / fetch.
    for proc in range(n_procs):
        for line in range(n_lines):
            mem_wts, mem_rts = mem[line]
            copy = caches[proc][line]
            new_mem_rts = int(rules.lease_grant(pts[proc], mem_rts, lease))
            granted_mem = mem[:line] + ((mem_wts, new_mem_rts),) \
                + mem[line + 1:]
            own_rts = int(rules.own_lease(pts[proc], lease))
            for word in range(line_words):
                if copy is not None:
                    cached_wts, cached_rts, cached_vers = copy
                    if bool(rules.lease_hit(pts[proc], cached_rts)):
                        if cached_vers[word] < floor[line][word]:
                            yield (("read", proc, line, word, "hit"), None,
                                   (proc, line, word, "hit",
                                    cached_vers[word], floor[line][word]))
                        else:
                            yield (("read", proc, line, word, "hit"),
                                   None, None)
                        continue
                    if bool(rules.renewal_ok(cached_wts, mem_wts, base)):
                        breach = None
                        if cached_vers[word] < floor[line][word]:
                            breach = (proc, line, word, "renewal",
                                      cached_vers[word], floor[line][word])
                        new_cache = (caches[proc][:line]
                                     + ((cached_wts, own_rts, cached_vers),)
                                     + caches[proc][line + 1:])
                        new_caches = (caches[:proc] + (new_cache,)
                                      + caches[proc + 1:])
                        yield (("read", proc, line, word, "renew"),
                               (pts, base, granted_mem, vers, floor,
                                new_caches, rebases), breach)
                        continue
                # Miss or unprovable copy: fetch current data + lease.
                new_cache = (caches[proc][:line]
                             + ((mem_wts, own_rts, vers[line]),)
                             + caches[proc][line + 1:])
                new_caches = caches[:proc] + (new_cache,) + caches[proc + 1:]
                yield (("read", proc, line, word, "fetch"),
                       (pts, base, granted_mem, vers, floor, new_caches,
                        rebases), None)


def _trace_to(parents, state) -> Tuple[Tuple, ...]:
    actions: List[Tuple] = []
    while True:
        link = parents[state]
        if link is None:
            break
        state, action = link
        actions.append(action)
    return tuple(reversed(actions))


def tardis_check_config(config: TardisModelConfig,
                        rules: TardisRules = TARDIS_PRODUCTION_RULES, *,
                        max_violations: int = 1,
                        max_states: int = 2_000_000) -> TardisCheckResult:
    """Exhaustively enumerate every reachable state of one configuration.

    Breadth-first, so the first counterexample found has a minimal
    action trace; ``max_states`` is the runaway backstop (hitting it
    voids the exhaustiveness claim and marks the result truncated).
    """
    start = time.perf_counter()
    result = TardisCheckResult(config=config, rules=rules.name)
    init = _initial_state(config)
    parents: Dict[Tuple, Optional[Tuple]] = {init: None}
    frontier = deque([init])
    while frontier:
        if len(parents) > max_states:
            result.truncated = True
            break
        state = frontier.popleft()
        for action, nxt, breach in _successors(state, config, rules):
            result.transitions += 1
            if (action[0] == "read" and action[4] in ("hit", "renew")
                    and breach is None):
                result.reads_checked += 1
            if breach is not None:
                result.reads_checked += 1
                proc, line, word, served, version, vfloor = breach
                trace = _trace_to(parents, state)
                if nxt is not None:  # the serving read is the last action
                    trace = trace + (action,)
                result.violations.append(TardisViolation(
                    config=config, trace=trace, proc=proc, line=line,
                    word=word, served=served, version=version, floor=vfloor))
                if len(result.violations) >= max_violations:
                    frontier.clear()
                    break
                continue
            if nxt is not None and nxt not in parents:
                parents[nxt] = (state, action)
                result.max_rebases = max(result.max_rebases, nxt[6])
                frontier.append(nxt)
    result.states = len(parents)
    result.elapsed = time.perf_counter() - start
    return result


# --------------------------------------------------- production-replay check


@dataclass(frozen=True)
class TardisReplayOutcome:
    """Production verdict on one model counterexample.

    ``confirmed`` — the production :class:`TardisScheme`'s per-read
    version oracle tripped on the same serving read, so the model's
    counterexample is a genuine protocol bug.  Otherwise production
    *refuted* the trace: expected for mutants, model drift for the
    production rules.
    """

    confirmed: bool
    final_kind: str
    mismatches: Tuple[str, ...]
    detail: str

    @property
    def refuted(self) -> bool:
        return not self.confirmed


def _tardis_replay_rig(config: TardisModelConfig):
    """A production SimContext shaped like the model: one shared array
    per line, a cache that holds every line, no marking (hardware)."""
    from repro.common.config import CacheConfig, MachineConfig, TardisConfig
    from repro.compiler.epochs import EpochGraph
    from repro.compiler.marking import Marking
    from repro.ir import ProgramBuilder
    from repro.memsys.memory import ShadowMemory
    from repro.memsys.network import KruskalSnirNetwork
    from repro.trace.layout import MemoryLayout

    n_sets = 1
    while n_sets < config.n_lines:
        n_sets *= 2
    machine = MachineConfig(
        n_procs=config.n_procs,
        cache=CacheConfig(size_bytes=n_sets * config.line_words * 4,
                          line_words=config.line_words),
        tardis=TardisConfig(lease=config.lease,
                            timestamp_bits=config.timestamp_bits),
    )
    builder = ProgramBuilder("modelcheck-tardis-replay")
    for line in range(config.n_lines):
        builder.array(f"A{line}", (config.line_words,))
    with builder.procedure("main"):
        pass
    program = builder.build()
    layout = MemoryLayout(program, config.n_procs, config.line_words)
    from repro.coherence.api import SimContext

    return SimContext(machine=machine,
                      marking=Marking(tpi={}, sc={}, graph=EpochGraph()),
                      shadow=ShadowMemory(layout.total_words),
                      network=KruskalSnirNetwork(machine), layout=layout)


def replay_tardis_counterexample(violation: TardisViolation
                                 ) -> TardisReplayOutcome:
    """Drive the production TardisScheme through a counterexample trace.

    ``barrier`` becomes ``end_epoch`` + shadow barrier; reads and writes
    become scheme accesses.  The production shadow memory's own version
    oracle is the staleness judge, so confirmation does not depend on
    the model's ghost state.
    """
    from repro.coherence.api import make_scheme
    from repro.common.errors import SimulationError
    from repro.common.stats import MissKind

    config = violation.config
    ctx = _tardis_replay_rig(config)
    scheme = make_scheme("tardis", ctx)

    def addr_of(line: int, word: int) -> int:
        return ctx.layout.addr_of(f"A{line}", (word,))

    final = (("read", violation.proc, violation.line, violation.word,
              violation.served),)
    mismatches: List[str] = []
    final_kind = "none"
    confirmed = False
    detail = ""
    trace = violation.trace + final
    for index, action in enumerate(trace):
        last = index == len(trace) - 1
        if action[0] == "barrier":
            scheme.end_epoch(None)
            ctx.shadow.barrier()
        elif action[0] == "write":
            _, proc, line, word = action
            scheme.write(proc, addr_of(line, word), 0, True, False)
        else:
            _, proc, line, word = action[:4]
            how = action[4] if len(action) > 4 else "fetch"
            try:
                outcome = scheme.read(proc, addr_of(line, word), 0, True,
                                      False)
            except SimulationError as exc:
                final_kind = "stale-hit"
                if last:
                    confirmed = True
                    detail = f"production confirmed the stale read: {exc}"
                else:
                    mismatches.append(
                        f"step {index}: production already stale ({exc})")
                    detail = "production went stale before the final read"
                break
            hit = outcome.kind is MissKind.HIT
            final_kind = "hit" if hit else outcome.kind.name.lower()
            if last:
                detail = ("production hit fresh data" if hit else
                          f"production served fresh data ({final_kind})")
            elif how == "fetch" and hit:
                mismatches.append(
                    f"step {index}: production hit where the model fetched")
            elif how in ("hit", "renew") and outcome.read_words > 0:
                mismatches.append(
                    f"step {index}: production fetched where the model "
                    f"served cached data")
    return TardisReplayOutcome(confirmed=confirmed, final_kind=final_kind,
                               mismatches=tuple(mismatches), detail=detail)


# ------------------------------------------------- protocol mutation gate


@dataclass(frozen=True)
class TardisMutation:
    """One seeded protocol bug and whether the checker caught it."""

    name: str
    caught: bool
    config_label: str
    states: int
    refuted_by_production: Optional[bool]


@dataclass
class TardisSelfTest:
    """Outcome of the Tardis protocol mutation self-test."""

    mutations: List[TardisMutation] = field(default_factory=list)

    @property
    def seeded(self) -> int:
        return len(self.mutations)

    @property
    def caught(self) -> int:
        return sum(1 for m in self.mutations if m.caught)

    @property
    def missed(self) -> List[TardisMutation]:
        return [m for m in self.mutations if not m.caught]

    @property
    def detection_rate(self) -> float:
        return self.caught / self.seeded if self.seeded else 1.0

    def summary(self) -> str:
        return (f"tardis mutation self-test: {self.caught}/{self.seeded} "
                f"seeded protocol bugs produced counterexamples")


#: Small grid for the self-test; every mutant must fall on one of these.
#: The two-line config reaches the rebase-collapse and retracted-lease
#: corners (a second line pumps logical time past the first line's
#: timestamps); the two-word config reaches the stale-sibling corner.
TARDIS_SELF_TEST_CONFIGS: Tuple[TardisModelConfig, ...] = (
    TardisModelConfig(n_procs=2, n_lines=1, line_words=2, timestamp_bits=2,
                      lease=1, max_ts=8),
    TardisModelConfig(n_procs=2, n_lines=2, line_words=1, timestamp_bits=2,
                      lease=1, max_ts=4),
)


def tardis_self_test(configs: Optional[Sequence[TardisModelConfig]] = None,
                     *, replay: bool = True) -> TardisSelfTest:
    """Seed each known protocol bug and require a counterexample.

    Each counterexample also replays against the production scheme,
    which must *refute* it (production does not have the seeded bug).
    """
    configs = (tuple(configs) if configs is not None
               else TARDIS_SELF_TEST_CONFIGS)
    result = TardisSelfTest()
    for mutant in tardis_mutants():
        caught = False
        label = ""
        states = 0
        refuted: Optional[bool] = None
        for config in configs:
            check = tardis_check_config(config, mutant)
            states += check.states
            if check.violations:
                caught = True
                label = config.label
                if replay:
                    refuted = replay_tardis_counterexample(
                        check.violations[0]).refuted
                break
        result.mutations.append(TardisMutation(
            name=mutant.name, caught=caught, config_label=label,
            states=states, refuted_by_production=refuted))
    return result


# ----------------------------------------------------------- report plumbing


def _code_digest() -> str:
    """Digest of the rule and checker sources, mixed into the cache key
    so editing either invalidates previously cached verification runs."""
    digest = hashlib.sha256()
    for source in (tardis_rules.__file__, __file__):
        digest.update(Path(source).read_bytes())
    return digest.hexdigest()


def tardis_modelcheck_fingerprint(configs: Sequence[TardisModelConfig]) -> str:
    """Content key for a cached tardis model-checking report."""
    from repro.runtime.cache import cache_salt
    from repro.runtime.jobs import canonical_json

    payload = canonical_json({
        "salt": cache_salt(),
        "kind": "modelcheck-tardis",
        "version": MODELCHECK_TARDIS_VERSION,
        "code": _code_digest(),
        "configs": [config.to_dict() for config in configs],
    })
    return hashlib.sha256(payload.encode()).hexdigest()


def tardis_modelcheck_report(
        configs: Optional[Sequence[TardisModelConfig]] = None, *,
        rules: TardisRules = TARDIS_PRODUCTION_RULES,
        max_violations: int = 8,
        max_states: int = 2_000_000,
        replay: bool = True,
        cache=None) -> Report:
    """Run the bounded-exhaustive check and report as lint diagnostics.

    * ``MC101`` (error) per staleness-safety counterexample;
    * ``MC102`` (error) when the production replay refutes a
      counterexample found against the production rules (model drift);
    * ``MC103`` (warning) when a configuration's enumeration never
      reached a second rebase, so the timestamp-compression corner is
      under-exercised;
    * ``MC104`` (warning) when the state backstop truncated the search.

    Reports for the production rules flow through the artifact cache
    (kind ``modelcheck``), keyed by the bounds and a digest of the
    rule/checker sources.
    """
    configs = (tuple(configs) if configs is not None
               else TARDIS_DEFAULT_CONFIGS)
    key = None
    if cache is not None and rules is TARDIS_PRODUCTION_RULES:
        from repro.runtime.cache import KIND_MODELCHECK

        key = tardis_modelcheck_fingerprint(configs)
        cached = cache.load(KIND_MODELCHECK, key)
        if isinstance(cached, Report):
            cached.meta["cache"] = "hit"
            return cached
    report = Report(subject="tardis-protocol", tool="modelcheck")
    report.meta["rules"] = rules.name
    report.meta["configs"] = ",".join(config.label for config in configs)
    total_states = total_transitions = total_reads = 0
    min_rebases: Optional[int] = None
    elapsed = 0.0
    results: List[TardisCheckResult] = []
    for config in configs:
        result = tardis_check_config(config, rules,
                                     max_violations=max_violations,
                                     max_states=max_states)
        results.append(result)
        total_states += result.states
        total_transitions += result.transitions
        total_reads += result.reads_checked
        elapsed += result.elapsed
        min_rebases = (result.max_rebases if min_rebases is None
                       else min(min_rebases, result.max_rebases))
        if result.max_rebases < 2:
            report.add(Diagnostic(
                "MC103",
                f"{config.label}: the bounds reach only "
                f"{result.max_rebases} rebase(s); the "
                f"timestamp-compression corner is not fully exercised",
                detail={"config": config.to_dict()}))
        if result.truncated:
            report.add(Diagnostic(
                "MC104",
                f"{config.label}: state backstop reached after "
                f"{result.states} states; enumeration is not exhaustive",
                detail={"config": config.to_dict()}))
        for violation in result.violations:
            detail: Dict[str, Any] = {
                "config": config.to_dict(),
                "trace": violation.render(),
                "proc": violation.proc,
                "line": violation.line,
                "word": violation.word,
                "served": violation.served,
                "version": violation.version,
                "floor": violation.floor,
            }
            if replay:
                outcome = replay_tardis_counterexample(violation)
                detail["replay"] = ("confirmed" if outcome.confirmed
                                    else "refuted")
                detail["replay_detail"] = outcome.detail
                if outcome.refuted and rules is TARDIS_PRODUCTION_RULES:
                    report.add(Diagnostic(
                        "MC102",
                        f"{config.label}: production TardisScheme refuted "
                        f"the model counterexample ({outcome.detail}); the "
                        f"abstract model has drifted from the implementation",
                        detail={"config": config.to_dict(),
                                "trace": violation.render()}))
            report.add(Diagnostic(
                "MC101",
                f"{config.label}: a {violation.served} read by "
                f"p{violation.proc} of l{violation.line}.w{violation.word} "
                f"serves version {violation.version} below the barrier "
                f"floor {violation.floor}",
                detail=detail))
    report.meta["states"] = total_states
    report.meta["transitions"] = total_transitions
    report.meta["reads_checked"] = total_reads
    report.meta["wraps"] = min(config.wraps for config in configs)
    report.meta["rebases"] = min_rebases or 0
    report.meta["elapsed"] = round(elapsed, 3)
    report.meta["results"] = [r.summary() for r in results]
    if cache is not None and key is not None:
        from repro.runtime.cache import KIND_MODELCHECK

        cache.store(KIND_MODELCHECK, key, report)
        report.meta["cache"] = "miss"
    return report
