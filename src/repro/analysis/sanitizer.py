"""Dynamic stale-read sanitizer: replay a trace against a marking.

The static oracle (:mod:`repro.analysis.oracle`) reasons over may-execute
paths; this module checks the other direction.  It replays one concrete
generated trace (:class:`repro.trace.events.Trace`) keeping, per
(processor, address), the epoch in which that processor's cached copy was
last known fresh, and flags every read that *observably* terminates a
stale reference sequence: another processor wrote the address in an epoch
strictly between the copy's epoch and the reading epoch.

Copy-freshness follows the scheme being checked:

* ``tpi`` — a Time-Read validates the word (fresh copy at the current
  epoch); an ordinary read of a fresh word also leaves a fresh copy.
* ``sc`` — a bypassing read does not allocate or validate, so the cached
  copy's age is unchanged by marked reads.
* ``tardis`` — hardware leases: the barrier joins every processor's
  timestamp past every committed write, so a read on a copy that missed
  a remote write always finds its lease expired and re-validates.  No
  site needs a mark; every stale read counts as covered.
* ``snoop`` — bus snooping: a committing write's invalidation destroys
  every remote copy, so no stale copy survives for a read to terminate;
  the replay must observe *zero* stale reads.

Writes in an epoch are committed at the epoch barrier, so same-epoch
communication (e.g. through critical sections) is never counted — only
definite cross-epoch staleness is, which a sound marking (or the
hardware, for the invalidation-free schemes) must cover.  Every flagged
read whose site the checked scheme left uncovered is a confirmed
soundness violation (rule ``SAN001``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.compiler.marking import Marking, RefMark
from repro.trace.events import EventKind, Trace

#: Schemes whose hardware maintains coherence: the sanitizer checks the
#: hardware's freshness model instead of a marking map.
HARDWARE_SCHEMES: Tuple[str, ...] = ("tardis", "snoop")

SANITIZER_SCHEMES: Tuple[str, ...] = ("tpi", "sc") + HARDWARE_SCHEMES


@dataclass(frozen=True)
class StaleRead:
    """One dynamically observed stale read."""

    epoch: int
    epoch_label: str
    proc: int
    addr: int
    site: int
    marked: bool  # was the site marked (Time-Read / bypass) for the scheme?


def replay_stale_reads(trace: Trace, marking: Marking,
                       scheme: str = "tpi") -> List[StaleRead]:
    """All observably stale reads in a trace, flagged with whether the
    checked scheme's validation mechanism covered their site.

    For the software schemes that is the marking map; for the hardware
    schemes (:data:`HARDWARE_SCHEMES`) the marking is ignored — Tardis's
    barrier lease-join covers every read (``marked`` is always True),
    and snoop's commit-time invalidations remove remote copies so no
    stale read can be observed at all.
    """
    if scheme == "tpi":
        marks = marking.tpi
        marked_read_validates, invalidating = True, False
    elif scheme == "sc":
        marks = marking.sc
        marked_read_validates, invalidating = False, False
    elif scheme == "tardis":
        marks = None  # leases re-validate every read; no marks exist
        marked_read_validates, invalidating = True, False
    elif scheme == "snoop":
        marks = None  # invalidations destroy copies before any read
        marked_read_validates, invalidating = True, True
    else:
        raise ValueError(f"sanitizer checks one of "
                         f"{'/'.join(SANITIZER_SCHEMES)}, not {scheme!r}")

    copies: Dict[int, Dict[int, int]] = {}  # addr -> proc -> copy's epoch
    last_write: Dict[int, Dict[int, int]] = {}  # addr -> proc -> epoch
    findings: List[StaleRead] = []

    for epoch in trace.epochs:
        pending: List[Tuple[int, int]] = []  # (addr, proc) written this epoch
        for task in epoch.tasks:
            proc = task.proc
            for event in task.events:
                if not event.shared:
                    continue
                if event.kind is EventKind.WRITE:
                    copies.setdefault(event.addr, {})[proc] = epoch.index
                    pending.append((event.addr, proc))
                    continue
                if event.kind is not EventKind.READ:
                    continue
                held = copies.get(event.addr, {}).get(proc)
                stale = held is not None and any(
                    writer != proc and written > held
                    for writer, written in
                    last_write.get(event.addr, {}).items())
                marked = (True if marks is None
                          else marks.get(event.site) is RefMark.TIME_READ)
                if stale:
                    findings.append(StaleRead(
                        epoch=epoch.index, epoch_label=epoch.label,
                        proc=proc, addr=event.addr, site=event.site,
                        marked=marked))
                if marked and not marked_read_validates:
                    continue  # SC bypass: cache copy untouched
                if not stale or marked:
                    copies.setdefault(event.addr, {})[proc] = epoch.index
                # An unmarked stale read hits on the old copy: its age is
                # unchanged (and the violation is already recorded).
        for addr, proc in pending:
            last_write.setdefault(addr, {})[proc] = epoch.index
            if invalidating:
                holders = copies.get(addr)
                if holders:
                    for other in [p for p in holders if p != proc]:
                        del holders[other]

    return findings


def unmarked_stale_sites(findings: List[StaleRead]) -> Dict[int, StaleRead]:
    """First violation per site among reads the marking left ordinary."""
    violations: Dict[int, StaleRead] = {}
    for finding in findings:
        if not finding.marked:
            violations.setdefault(finding.site, finding)
    return violations
