"""Dynamic stale-read sanitizer: replay a trace against a marking.

The static oracle (:mod:`repro.analysis.oracle`) reasons over may-execute
paths; this module checks the other direction.  It replays one concrete
generated trace (:class:`repro.trace.events.Trace`) keeping, per
(processor, address), the epoch in which that processor's cached copy was
last known fresh, and flags every read that *observably* terminates a
stale reference sequence: another processor wrote the address in an epoch
strictly between the copy's epoch and the reading epoch.

Copy-freshness follows the scheme being checked:

* ``tpi`` — a Time-Read validates the word (fresh copy at the current
  epoch); an ordinary read of a fresh word also leaves a fresh copy.
* ``sc`` — a bypassing read does not allocate or validate, so the cached
  copy's age is unchanged by marked reads.

Writes in an epoch are committed at the epoch barrier, so same-epoch
communication (e.g. through critical sections) is never counted — only
definite cross-epoch staleness is, which a sound marking must cover.
Every flagged read whose site the marking left ordinary is a confirmed
soundness violation (rule ``SAN001``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.compiler.marking import Marking, RefMark
from repro.trace.events import EventKind, Trace


@dataclass(frozen=True)
class StaleRead:
    """One dynamically observed stale read."""

    epoch: int
    epoch_label: str
    proc: int
    addr: int
    site: int
    marked: bool  # was the site marked (Time-Read / bypass) for the scheme?


def replay_stale_reads(trace: Trace, marking: Marking,
                       scheme: str = "tpi") -> List[StaleRead]:
    """All observably stale reads in a trace, flagged with whether the
    checked scheme's map marked their site."""
    if scheme == "tpi":
        marks = marking.tpi
        marked_read_validates = True
    elif scheme == "sc":
        marks = marking.sc
        marked_read_validates = False
    else:
        raise ValueError(f"sanitizer checks 'tpi' or 'sc', not {scheme!r}")

    copy_epoch: Dict[Tuple[int, int], int] = {}
    last_write: Dict[int, Dict[int, int]] = {}  # addr -> proc -> epoch
    findings: List[StaleRead] = []

    for epoch in trace.epochs:
        pending: List[Tuple[int, int]] = []  # (addr, proc) written this epoch
        for task in epoch.tasks:
            proc = task.proc
            for event in task.events:
                if not event.shared:
                    continue
                if event.kind is EventKind.WRITE:
                    copy_epoch[(proc, event.addr)] = epoch.index
                    pending.append((event.addr, proc))
                    continue
                if event.kind is not EventKind.READ:
                    continue
                held = copy_epoch.get((proc, event.addr))
                stale = held is not None and any(
                    writer != proc and written > held
                    for writer, written in
                    last_write.get(event.addr, {}).items())
                marked = marks.get(event.site) is RefMark.TIME_READ
                if stale:
                    findings.append(StaleRead(
                        epoch=epoch.index, epoch_label=epoch.label,
                        proc=proc, addr=event.addr, site=event.site,
                        marked=marked))
                if marked and not marked_read_validates:
                    continue  # SC bypass: cache copy untouched
                if not stale or marked:
                    copy_epoch[(proc, event.addr)] = epoch.index
                # An unmarked stale read hits on the old copy: its age is
                # unchanged (and the violation is already recorded).
        for addr, proc in pending:
            last_write.setdefault(addr, {})[proc] = epoch.index

    return findings


def unmarked_stale_sites(findings: List[StaleRead]) -> Dict[int, StaleRead]:
    """First violation per site among reads the marking left ordinary."""
    violations: Dict[int, StaleRead] = {}
    for finding in findings:
        if not finding.marked:
            violations.setdefault(finding.site, finding)
    return violations
