"""Optional compiled (numba) tier for the batch scan kernels.

The fast engine's remaining wall time sits in the *scan* stage of the
batch kernels (:mod:`repro.coherence.batch`): per window, two stable
argsorts build the set/address chains and a dozen-plus full-window numpy
passes evaluate the closed-form hit/miss/staleness formulas.  Every one
of those formulas only ever asks "did some earlier event in my set (or
address) group satisfy X?" — questions a single forward walk over the
window answers with O(1) scratch per set/address group.  This module
rewrites each kernel's ``_scan`` as exactly that walk, in plain Python
that numba can compile with ``@njit(cache=True)``, over the very same
flat columns (zero-copy from :class:`~repro.trace.columnar
.ColumnarTrace` slices; no new data layout).

**Byte-identical by construction.**  A kernel's ``_scan`` is pure: it
reads protocol state and returns ``(ok, ctx)``; all mutation happens in
``_apply``, which consumes only ``(ok, ctx)``.  The loops below compute
the *same definitions* the numpy passes compute (including the TPI
two-pass stamping fixed point, replayed literally: ``stamped`` uses the
pass-1.5 ``hit_ns`` approximation, not the final ``hit``), so the
``(ok, ctx)`` arrays are bit-equal and the unchanged ``_apply`` yields
bit-equal results.  tests/test_engine_parity.py enforces this
differentially against both the reference and fast engines.

**Tier selection** mirrors the engine knob: ``REPRO_JIT=1`` (or
``MachineConfig.jit``/``--jit``) opts in on top of ``--engine
fast|gang``.  Three modes:

* ``on`` — compile the loops with numba.  Falls back *wholesale* (the
  numpy scans run, results unchanged) when numba is absent or too old,
  the geometry has no batch kernel (``associativity != 1``), the scheme
  has no registered loop, or compilation fails at first call; the
  reason lands in ``SimResult.jit`` (``"fallback:<reason>"``) and the
  run-report ``jit_fallbacks`` telemetry.  Epochs the engine cannot
  batch at all (locks/critical sections, sync) take the exact per-event
  path exactly as without the tier.
* ``interp`` — run the identical loop functions *uncompiled*: slow, but
  it exercises every jit-tier code path with no numba installed, which
  is how the differential tests pin the tier's parity everywhere.
* ``off`` — the tier is never attached (the default).

Job fingerprints never see the knob (:func:`repro.runtime.jobs
.split_machine` drops ``jit`` alongside ``engine``), so cache artifacts
are shared across tiers.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Tuple

import numpy as np

from repro.coherence.batch import (BaseBatchKernel, DirectoryBatchKernel,
                                   ScBatchKernel, SnoopBatchKernel,
                                   TardisBatchKernel, TpiBatchKernel,
                                   UpdateBatchKernel)
from repro.coherence.sparse import STATE_E
from repro.coherence.tpi_rules import time_read_window, word_age
from repro.common.errors import ConfigError

JIT_MODES = ("on", "off", "interp")
"""Concrete tier modes (``MachineConfig.jit`` adds ``"auto"`` on top)."""

NUMBA_MIN_VERSION = (0, 57)
"""Oldest numba the compiled mode accepts (matches the ``[jit]`` extra
pin in pyproject.toml)."""

_ENV_ON = frozenset(("1", "on", "true", "yes"))
_ENV_OFF = frozenset(("0", "off", "false", "no"))


def parse_jit_env() -> str:
    """``$REPRO_JIT`` as a mode string (``""`` when unset/empty).

    Raises :class:`~repro.common.errors.ConfigError` — a one-line exit-2
    on the CLI — for garbage values, so a typo never silently runs the
    uncompiled tier.
    """
    raw = os.environ.get("REPRO_JIT", "").strip().lower()
    if not raw:
        return ""
    if raw in _ENV_ON:
        return "on"
    if raw in _ENV_OFF:
        return "off"
    if raw == "interp":
        return "interp"
    raise ConfigError(f"REPRO_JIT must be one of "
                      f"0, 1, on, off, interp; got {raw!r}")


def resolve_jit(machine) -> str:
    """Resolve a machine's ``jit`` field to ``on``/``off``/``interp``."""
    choice = machine.jit
    if choice == "auto":
        choice = parse_jit_env() or "off"
    return choice


_numba_state: Optional[Tuple[Optional[object], str]] = None


def numba_available() -> Tuple[Optional[object], str]:
    """``(numba module, "")`` or ``(None, reason)``, probed once."""
    global _numba_state
    if _numba_state is None:
        try:
            import numba
        except ImportError:
            _numba_state = (None, "numba-missing")
        else:
            try:
                parts = tuple(int(p) for p in
                              numba.__version__.split(".")[:2])
            except ValueError:  # pragma: no cover - exotic version string
                parts = NUMBA_MIN_VERSION
            if parts < NUMBA_MIN_VERSION:
                _numba_state = (None, "numba-too-old")
            else:
                _numba_state = (numba, "")
    return _numba_state


_warned: set = set()


def _warn_once(key: str, message: str) -> None:
    if key not in _warned:
        _warned.add(key)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


# ---------------------------------------------------------------------------
# Attach: bind a jit scan onto a fast engine's kernel instance


def attach(engine) -> str:
    """Bind the compiled (or interp) scan tier onto ``engine._kernel``.

    Called from ``FastEngine.__init__``; returns the provenance string
    recorded on :attr:`SimResult.jit`: ``""`` (tier off), ``"numba"``,
    ``"interp"``, or ``"fallback:<reason>"``.  A fallback leaves the
    engine untouched — the numpy scans run and results are identical.
    """
    mode = resolve_jit(engine.machine)
    if mode == "off":
        return ""
    if mode == "on":
        module, reason = numba_available()
        if module is None:
            _warn_once(reason,
                       f"REPRO_JIT requested the compiled tier but "
                       f"{reason.replace('-', ' ')}; falling back to the "
                       f"numpy scans (results are identical; install the "
                       f"[jit] extra to compile)")
            return "fallback:" + reason
    kernel = engine._kernel
    if kernel is None:
        # No batch kernel for this geometry (associativity != 1) or the
        # scheme builds none; nothing to compile.
        return "fallback:no-kernel"
    entry = None
    for klass in type(kernel).__mro__:
        entry = _REGISTRY.get(klass)
        if entry is not None:
            break
    if entry is None:  # pragma: no cover - every shipped kernel registers
        return "fallback:unsupported-scheme"
    wrapper, loop_name = entry
    kernel._scan = JitScan(kernel, mode, engine, wrapper, loop_name)
    return "numba" if mode == "on" else "interp"


class JitScan:
    """A kernel instance's bound scan: jit loop first, numpy on failure.

    Instance-attribute assignment (``kernel._scan = JitScan(...)``)
    shadows the class method, so ``span``/``preapply`` pick the tier up
    with zero changes to :mod:`repro.coherence.batch`.  The scans are
    pure, so a numba failure mid-call loses nothing: the original numpy
    scan re-answers the same window and the tier stays off for the rest
    of the run, with the reason recorded on the engine's provenance.
    """

    __slots__ = ("kernel", "mode", "engine", "wrapper", "loop_name",
                 "calls", "dead")

    def __init__(self, kernel, mode, engine, wrapper, loop_name):
        self.kernel = kernel
        self.mode = mode
        self.engine = engine
        self.wrapper = wrapper
        self.loop_name = loop_name
        self.calls = 0
        self.dead = False

    def __call__(self, cols):
        if not self.dead:
            if self.mode == "interp":
                self.calls += 1
                return self.wrapper(self.kernel, cols,
                                    _LOOPS[self.loop_name])
            try:
                loop = _compiled_loop(self.loop_name)
                result = self.wrapper(self.kernel, cols, loop)
            except _numba_errors() as exc:
                self.dead = True
                _warn_once("compile:" + self.loop_name,
                           f"repro.sim.jit: compiling {self.loop_name} "
                           f"failed ({exc}); falling back to the numpy "
                           f"scans (results are identical)")
                if self.engine is not None:
                    self.engine.jit_state = "fallback:compile-error"
            else:
                self.calls += 1
                return result
        return type(self.kernel)._scan(self.kernel, cols)


_compiled: dict = {}


def _compiled_loop(name: str):
    fn = _compiled.get(name)
    if fn is None:
        module, _reason = numba_available()
        fn = _compiled[name] = module.njit(cache=True)(_LOOPS[name])
    return fn


def _numba_errors() -> tuple:
    module, _reason = numba_available()
    if module is None:  # pragma: no cover - guarded by attach
        return ()
    from numba.core.errors import NumbaError

    return (NumbaError,)


# ---------------------------------------------------------------------------
# Window plumbing shared by the scan wrappers


def _dense_keys(cols):
    """Window-local dense ids for the set/address chain groups.

    ``skey``/``akey`` offset per processor in merged windows, so their
    values can be huge; one ``np.unique(return_inverse=True)`` per key
    maps them onto ``[0, n_groups)`` so the loops' scratch arrays stay
    window-sized.  The mapping depends only on static columns — like the
    argsort chains it replaces, it is memoized on the window and reused
    across schemes and repeated simulations of cached merged windows.
    """
    cached = cols.cache.get("jitkeys")
    if cached is None:
        sidx = np.unique(cols.skey, return_inverse=True)[1]
        aidx = np.unique(cols.akey, return_inverse=True)[1]
        sidx = np.ascontiguousarray(sidx.reshape(-1), dtype=np.int64)
        aidx = np.ascontiguousarray(aidx.reshape(-1), dtype=np.int64)
        cached = cols.cache["jitkeys"] = (
            sidx, int(sidx.max()) + 1 if sidx.size else 0,
            aidx, int(aidx.max()) + 1 if aidx.size else 0)
    return cached


def _b(arr) -> np.ndarray:
    """Contiguous bool column (uniform dtype keeps one numba signature)."""
    return np.ascontiguousarray(arr, dtype=np.bool_)


def _i(arr) -> np.ndarray:
    """Contiguous int64 column."""
    return np.ascontiguousarray(arr, dtype=np.int64)


# ---------------------------------------------------------------------------
# The loops.  Each mirrors one kernel's numpy ``_scan`` definition-for-
# definition: "prior X in my set/address group" becomes a scratch flag
# read before the event updates it, and the group-wide poisoning
# (conflict / staleness-oracle) becomes a second pass over the per-group
# flags.  Plain Python + numpy scalars only — numba-compilable as-is.


def _base_loop(sidx, n_us, aidx, n_ua, line, wr, sh, tags0, touched0):
    n = line.shape[0]
    set_last = np.full(n_us, -1, np.int64)
    set_has = np.zeros(n_us, np.bool_)
    set_conflict = np.zeros(n_us, np.bool_)
    a_touch = np.zeros(n_ua, np.bool_)
    miss = np.zeros(n, np.bool_)
    repl = np.zeros(n, np.bool_)
    touch = np.zeros(n, np.bool_)
    ok = np.ones(n, np.bool_)
    for i in range(n):
        sk = sidx[i]
        ak = aidx[i]
        ln = line[i]
        priv = not sh[i]
        # Allocation chain masked to private accesses (only they cache).
        if set_has[sk]:
            res = set_last[sk] == ln
            if priv and set_last[sk] != ln:
                set_conflict[sk] = True
        else:
            res = tags0[i] == ln
        m = priv and not res
        t = priv and (wr[i] or m)
        miss[i] = m
        touch[i] = t
        repl[i] = touched0[i] or a_touch[ak]
        if t:
            a_touch[ak] = True
        if priv:
            set_last[sk] = ln
            set_has[sk] = True
    for i in range(n):
        if (not sh[i]) and set_conflict[sidx[i]]:
            ok[i] = False
    return ok, miss, repl, touch


def _sc_loop(sidx, n_us, aidx, n_ua, line, wr, sh, bypass, tags0,
             cur_eq, stale_lt, touched0, check):
    n = line.shape[0]
    set_last = np.full(n_us, -1, np.int64)
    set_has = np.zeros(n_us, np.bool_)
    set_miss = np.zeros(n_us, np.bool_)
    set_conflict = np.zeros(n_us, np.bool_)
    set_stale = np.zeros(n_us, np.bool_)
    a_wr = np.zeros(n_ua, np.bool_)
    a_touch = np.zeros(n_ua, np.bool_)
    miss = np.zeros(n, np.bool_)
    have = np.zeros(n, np.bool_)
    current = np.zeros(n, np.bool_)
    touched = np.zeros(n, np.bool_)
    ok = np.ones(n, np.bool_)
    for i in range(n):
        sk = sidx[i]
        ak = aidx[i]
        ln = line[i]
        w = wr[i]
        cached = not bypass[i]
        if set_has[sk]:
            res = set_last[sk] == ln
            if cached and set_last[sk] != ln:
                set_conflict[sk] = True
        else:
            res = tags0[i] == ln
        m = cached and not res
        fresh = set_miss[sk]
        wb = a_wr[ak]
        have[i] = res
        miss[i] = m
        current[i] = wb or fresh or cur_eq[i]
        touched[i] = touched0[i] or a_touch[ak]
        if (check and cached and not w and res and not wb and not fresh
                and stale_lt[i]):
            set_stale[sk] = True
        if m:
            set_miss[sk] = True
        if cached:
            set_last[sk] = ln
            set_has[sk] = True
        if w:
            a_wr[ak] = True
        if bypass[i] or w or (m and not w):
            a_touch[ak] = True
    for i in range(n):
        sk = sidx[i]
        if set_conflict[sk] or set_stale[sk]:
            ok[i] = False
    return ok, miss, have, current, touched


def _tpi_loop(sidx, n_us, aidx, n_ua, line, wr, tags0, wv0, age0, tr,
              strict, window, no_region, cur_eq, stale_lt, touched0,
              per_word, check):
    n = line.shape[0]
    set_last = np.full(n_us, -1, np.int64)
    set_has = np.zeros(n_us, np.bool_)
    set_cand = np.zeros(n_us, np.bool_)
    set_conflict = np.zeros(n_us, np.bool_)
    set_stale = np.zeros(n_us, np.bool_)
    a_wr = np.zeros(n_ua, np.bool_)
    a_stamp = np.zeros(n_ua, np.bool_)
    a_rmiss = np.zeros(n_ua, np.bool_)
    a_seen = np.zeros(n_ua, np.bool_)
    hit = np.zeros(n, np.bool_)
    rmiss = np.zeros(n, np.bool_)
    wmiss = np.zeros(n, np.bool_)
    resident = np.zeros(n, np.bool_)
    valid = np.zeros(n, np.bool_)
    current = np.zeros(n, np.bool_)
    touched = np.zeros(n, np.bool_)
    fill = np.zeros(n, np.bool_)
    ok = np.ones(n, np.bool_)
    for i in range(n):
        sk = sidx[i]
        ak = aidx[i]
        ln = line[i]
        w = wr[i]
        is_tr = tr[i]
        st = strict[i]
        win = window[i]
        noreg = no_region[i]
        a0 = age0[i]
        # Unmasked allocation chain: every access installs/holds.
        if set_has[sk]:
            res = set_last[sk] == ln
            if set_last[sk] != ln:
                set_conflict[sk] = True
        else:
            res = tags0[i] == ln
        wb = a_wr[ak]
        fresh = set_cand[sk]
        fl = tags0[i] != ln
        vld = wb or fresh or wv0[i]
        if per_word:
            age_p = 0 if wb else a0
            hp = (res and (wb or wv0[i])
                  and ((not is_tr) or (age_p == 0 if st
                                       else (age_p <= win) or noreg)))
            age_f = 1 if (fl or not wv0[i]) else (a0 if a0 < 1 else 1)
            age_ns = 0 if wb else (age_f if fresh else a0)
            hns = (res and vld
                   and ((not is_tr) or (age_ns == 0 if st
                                        else (age_ns <= win) or noreg)))
            age2 = 0 if a_stamp[ak] else age_ns
            h = (res and vld
                 and ((not is_tr) or (age2 == 0 if st
                                      else (age2 <= win) or noreg)))
            refreshed = fresh and (fl or (not wv0[i]) or a0 > 1)
        else:
            # Per-line tags: strict Time-Reads never hit, no stamping.
            hp = (res and (wb or wv0[i])
                  and ((not is_tr) or (False if st
                                       else (a0 <= win) or noreg)))
            hns = hp
            age_ns = 1 if fresh else a0
            h = (res and vld
                 and ((not is_tr) or (False if st
                                      else (age_ns <= win) or noreg)))
            refreshed = fresh
        rm = (not w) and not h
        rm_before = a_rmiss[ak]
        resident[i] = res
        valid[i] = vld
        fill[i] = fl
        hit[i] = h
        rmiss[i] = rm
        wmiss[i] = w and not res
        current[i] = wb or rm_before or refreshed or cur_eq[i]
        touched[i] = touched0[i] or a_seen[ak]
        if check and h and stale_lt[i]:
            if not (wb or rm_before or refreshed):
                set_stale[sk] = True
        # Scratch updates (events after i see these as "prior").
        cand = (not res) if w else (not hp)
        if cand:
            set_cand[sk] = True
        set_last[sk] = ln
        set_has[sk] = True
        if w:
            a_wr[ak] = True
        if per_word and (not w) and (not hns) and (not st):
            a_stamp[ak] = True
        if rm:
            a_rmiss[ak] = True
        a_seen[ak] = True
    for i in range(n):
        sk = sidx[i]
        if set_conflict[sk] or set_stale[sk]:
            ok[i] = False
    return (ok, hit, rmiss, wmiss, resident, valid, current, touched, fill)


def _directory_loop(sidx, n_us, aidx, n_ua, line, wr, sh, tags0, e0,
                    ver_ne, check):
    n = line.shape[0]
    set_last = np.full(n_us, -1, np.int64)
    set_has = np.zeros(n_us, np.bool_)
    set_wrsh = np.zeros(n_us, np.bool_)
    set_miss = np.zeros(n_us, np.bool_)
    set_conflict = np.zeros(n_us, np.bool_)
    set_stale = np.zeros(n_us, np.bool_)
    a_wr = np.zeros(n_ua, np.bool_)
    miss = np.zeros(n, np.bool_)
    upgrade = np.zeros(n, np.bool_)
    ok = np.ones(n, np.bool_)
    for i in range(n):
        sk = sidx[i]
        ak = aidx[i]
        ln = line[i]
        w = wr[i]
        if set_has[sk]:
            res = set_last[sk] == ln
            if set_last[sk] != ln:
                set_conflict[sk] = True
        else:
            res = tags0[i] == ln
        m = not res
        e_self = e0[i] or set_wrsh[sk]
        miss[i] = m
        upgrade[i] = w and sh[i] and res and not e_self
        if check and not w and sh[i] and res and ver_ne[i]:
            if not (a_wr[ak] or set_miss[sk]):
                set_stale[sk] = True
        if w and sh[i]:
            set_wrsh[sk] = True
        if m:
            set_miss[sk] = True
        if w:
            a_wr[ak] = True
        set_last[sk] = ln
        set_has[sk] = True
    for i in range(n):
        sk = sidx[i]
        if set_conflict[sk] or set_stale[sk]:
            ok[i] = False
    return ok, miss, upgrade


def _snoop_loop(sidx, n_us, aidx, n_ua, line, wr, sh, tags0, dirty0,
                ver_ne, check):
    n = line.shape[0]
    set_last = np.full(n_us, -1, np.int64)
    set_has = np.zeros(n_us, np.bool_)
    set_wr = np.zeros(n_us, np.bool_)
    set_miss = np.zeros(n_us, np.bool_)
    set_conflict = np.zeros(n_us, np.bool_)
    set_stale = np.zeros(n_us, np.bool_)
    a_wr = np.zeros(n_ua, np.bool_)
    miss = np.zeros(n, np.bool_)
    upgrade = np.zeros(n, np.bool_)
    ok = np.ones(n, np.bool_)
    for i in range(n):
        sk = sidx[i]
        ak = aidx[i]
        ln = line[i]
        w = wr[i]
        if set_has[sk]:
            res = set_last[sk] == ln
            if set_last[sk] != ln:
                set_conflict[sk] = True
        else:
            res = tags0[i] == ln
        m = not res
        m_now = (tags0[i] == ln and dirty0[i]) or set_wr[sk]
        miss[i] = m
        upgrade[i] = w and sh[i] and res and not m_now
        if check and not w and sh[i] and res and ver_ne[i]:
            if not (a_wr[ak] or set_miss[sk]):
                set_stale[sk] = True
        if w:
            set_wr[sk] = True
            a_wr[ak] = True
        if m:
            set_miss[sk] = True
        set_last[sk] = ln
        set_has[sk] = True
    for i in range(n):
        sk = sidx[i]
        if set_conflict[sk] or set_stale[sk]:
            ok[i] = False
    return ok, miss, upgrade


def _update_loop(sidx, n_us, aidx, n_ua, line, wr, sh, tags0, ver_ge,
                 check):
    n = line.shape[0]
    set_last = np.full(n_us, -1, np.int64)
    set_has = np.zeros(n_us, np.bool_)
    set_nres = np.zeros(n_us, np.bool_)
    a_wr = np.zeros(n_ua, np.bool_)
    batch = np.zeros(n, np.bool_)
    for i in range(n):
        sk = sidx[i]
        ak = aidx[i]
        ln = line[i]
        if set_has[sk]:
            res = set_last[sk] == ln
        else:
            res = tags0[i] == ln
        if check:
            fresh = a_wr[ak] or set_nres[sk] or ver_ge[i]
            batch[i] = res and (wr[i] or (not sh[i]) or fresh)
        else:
            batch[i] = res
        if not res:
            set_nres[sk] = True
        if wr[i]:
            a_wr[ak] = True
        set_last[sk] = ln
        set_has[sk] = True
    return batch


def _tardis_loop(sidx, n_us, line, wr, sh, tags0, rd_ok):
    n = line.shape[0]
    set_last = np.full(n_us, -1, np.int64)
    set_has = np.zeros(n_us, np.bool_)
    set_ncand = np.zeros(n_us, np.bool_)
    batch = np.zeros(n, np.bool_)
    for i in range(n):
        sk = sidx[i]
        ln = line[i]
        if set_has[sk]:
            res = set_last[sk] == ln
        else:
            res = tags0[i] == ln
        if wr[i]:
            cand = (not sh[i]) and res
        else:
            cand = res and ((not sh[i]) or rd_ok[i])
        batch[i] = cand and not set_ncand[sk]
        if not cand:
            set_ncand[sk] = True
        set_last[sk] = ln
        set_has[sk] = True
    return batch


_LOOPS = {
    "base": _base_loop, "sc": _sc_loop, "tpi": _tpi_loop,
    "directory": _directory_loop, "snoop": _snoop_loop,
    "update": _update_loop, "tardis": _tardis_loop,
}


# ---------------------------------------------------------------------------
# Scan wrappers: the numpy side (state gathers, site tables, ctx
# assembly) of each kernel's scan, feeding the loop above.  Gathers stay
# numpy — they are single C-speed fancy-index passes; what the loop
# replaces is the argsort chains and the multi-pass formula cascade.


def _base_scan(kernel, cols, loop):
    sidx, n_us, aidx, n_ua = _dense_keys(cols)
    tags0 = kernel._gset(kernel.tags, cols)
    touched0 = _b(kernel.scheme.touched[cols.procv, cols.addr])
    ok, miss, repl, touch = loop(
        sidx, n_us, aidx, n_ua, _i(cols.line), _b(cols.wr), _b(cols.sh),
        _i(tags0), touched0)
    return ok, {"miss": miss, "repl": repl, "touch": touch}


def _sc_scan(kernel, cols, loop):
    sidx, n_us, aidx, n_ua = _dense_keys(cols)
    wr, sh, addr, site = cols.wr, cols.sh, cols.addr, cols.site
    bypass = ~wr & sh & kernel._site_table(int(site.max()))[site]
    tags0 = kernel._gset(kernel.tags, cols)
    cver0 = kernel._gword(kernel.cver, cols)
    cur_eq = cver0 == kernel.shadow.version[addr]
    if kernel.check:
        stale_lt = cver0 < kernel.shadow.epoch_version[addr]
    else:
        stale_lt = np.zeros(cols.n, dtype=bool)
    touched0 = _b(kernel.scheme.touched[cols.procv, addr])
    ok, miss, have, current, touched = loop(
        sidx, n_us, aidx, n_ua, _i(cols.line), _b(wr), _b(sh), _b(bypass),
        _i(tags0), _b(cur_eq), _b(stale_lt), touched0, bool(kernel.check))
    return ok, {"bypass": bypass, "miss": miss, "have": have,
                "current": current, "touched": touched}


def _tpi_scan(kernel, cols, loop):
    scheme = kernel.scheme
    R = scheme.epoch_index
    mod = scheme.modulus
    per_word = scheme.per_word_tags
    wr, sh, addr, site = cols.wr, cols.sh, cols.addr, cols.site
    sidx, n_us, aidx, n_ua = _dense_keys(cols)
    tags0 = kernel._gset(kernel.tags, cols)
    wv0 = kernel._gword(kernel.wv, cols)
    tr_table, strict_table = kernel._site_tables(int(site.max()))
    tr = ~wr & sh & tr_table[site]
    strict = tr & strict_table[site]
    region = scheme.region_of[addr]
    window = time_read_window(R, scheme.w_regs[np.maximum(region, 0)], mod)
    no_region = region < 0
    if per_word:
        age0 = word_age(R, kernel._gword(kernel.tt, cols), mod)
    else:
        age0 = word_age(R, kernel._gword0(kernel.tt, cols), mod)
    cver0 = kernel._gword(kernel.cver, cols)
    cur_eq = cver0 == kernel.shadow.version[addr]
    if kernel.check:
        stale_lt = cver0 < kernel.shadow.epoch_version[addr]
    else:
        stale_lt = np.zeros(cols.n, dtype=bool)
    touched0 = _b(scheme.touched[cols.procv, addr])
    (ok, hit, rmiss, wmiss, resident, valid, current, touched,
     fill) = loop(
        sidx, n_us, aidx, n_ua, _i(cols.line), _b(wr), _i(tags0), _b(wv0),
        _i(age0), _b(tr), _b(strict), _i(np.broadcast_to(window, (cols.n,))),
        _b(no_region), _b(cur_eq), _b(stale_lt), touched0,
        bool(per_word), bool(kernel.check))
    return ok, {"tr": tr, "strict": strict, "hit": hit, "rmiss": rmiss,
                "wmiss": wmiss, "resident": resident, "valid": valid,
                "current": current, "touched": touched, "fill": fill}


def _directory_scan(kernel, cols, loop):
    sidx, n_us, aidx, n_ua = _dense_keys(cols)
    line, wr, sh, addr = cols.line, cols.wr, cols.sh, cols.addr
    store = kernel.scheme.dirstore
    tags0 = kernel._gset(kernel.tags, cols)
    e0 = ((store.state_code[line] == STATE_E)
          & (store.owner_p1[line] == cols.procv + 1))
    if kernel.check:
        ver_ne = (kernel._gword(kernel.cver, cols)
                  != kernel.shadow.version[addr])
    else:
        ver_ne = np.zeros(cols.n, dtype=bool)
    ok, miss, upgrade = loop(
        sidx, n_us, aidx, n_ua, _i(line), _b(wr), _b(sh), _i(tags0),
        _b(e0), _b(ver_ne), bool(kernel.check))
    return ok, {"miss": miss, "upgrade": upgrade,
                "occ0": tags0, "dirty0": kernel._gset(kernel.dirty, cols)}


def _snoop_scan(kernel, cols, loop):
    sidx, n_us, aidx, n_ua = _dense_keys(cols)
    line, wr, sh, addr = cols.line, cols.wr, cols.sh, cols.addr
    tags0 = kernel._gset(kernel.tags, cols)
    dirty0 = kernel._gset(kernel.dirty, cols)
    if kernel.check:
        ver_ne = (kernel._gword(kernel.cver, cols)
                  != kernel.shadow.version[addr])
    else:
        ver_ne = np.zeros(cols.n, dtype=bool)
    ok, miss, upgrade = loop(
        sidx, n_us, aidx, n_ua, _i(line), _b(wr), _b(sh), _i(tags0),
        _b(dirty0), _b(ver_ne), bool(kernel.check))
    return ok, {"miss": miss, "upgrade": upgrade,
                "occ0": tags0, "dirty0": dirty0}


def _update_scan(kernel, cols, loop):
    sidx, n_us, aidx, n_ua = _dense_keys(cols)
    tags0 = kernel._gset(kernel.tags, cols)
    if kernel.check:
        ver_ge = (kernel._gword(kernel.cver, cols)
                  >= kernel.shadow.epoch_version[cols.addr])
    else:
        ver_ge = np.zeros(cols.n, dtype=bool)
    batch = loop(sidx, n_us, aidx, n_ua, _i(cols.line), _b(cols.wr),
                 _b(cols.sh), _i(tags0), _b(ver_ge), bool(kernel.check))
    return np.ones(cols.n, dtype=bool), {"batch": batch}


def _tardis_scan(kernel, cols, loop):
    sidx, n_us, _aidx, _n_ua = _dense_keys(cols)
    wr, sh, addr = cols.wr, cols.sh, cols.addr
    tags0 = kernel._gset(kernel.tags, cols)
    ptsv = np.empty(cols.n, dtype=np.int64)
    prior_sw = np.zeros(cols.n, dtype=bool)
    swr = wr & sh
    for p, lo, hi in cols.parts:
        ptsv[lo:hi] = kernel.scheme.pts[p]
        w = swr[lo:hi]
        prior_sw[lo:hi] = (np.cumsum(w) - w) > 0
    lease0 = kernel._gset(kernel.rts, cols) >= ptsv
    if kernel.check:
        lease0 = lease0 & (kernel._gword(kernel.cver, cols)
                           >= kernel.shadow.epoch_version[addr])
    rd_ok = lease0 & ~prior_sw
    batch = loop(sidx, n_us, _i(cols.line), _b(wr), _b(sh), _i(tags0),
                 _b(rd_ok))
    return np.ones(cols.n, dtype=bool), {"batch": batch}


#: Kernel class -> (scan wrapper, loop name).  Subclasses resolve
#: through the MRO in :func:`attach`, so e.g. the LimitLess directory
#: variant (same DirectoryBatchKernel scan) is covered automatically.
_REGISTRY = {
    BaseBatchKernel: (_base_scan, "base"),
    ScBatchKernel: (_sc_scan, "sc"),
    TpiBatchKernel: (_tpi_scan, "tpi"),
    DirectoryBatchKernel: (_directory_scan, "directory"),
    SnoopBatchKernel: (_snoop_scan, "snoop"),
    UpdateBatchKernel: (_update_scan, "update"),
    TardisBatchKernel: (_tardis_scan, "tardis"),
}


__all__ = ["JIT_MODES", "JitScan", "NUMBA_MIN_VERSION", "attach",
           "numba_available", "parse_jit_env", "resolve_jit"]
