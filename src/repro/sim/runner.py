"""One-call simulation facade.

``prepare`` runs the compiler (marking) and the trace generator once;
``simulate`` drives any scheme over the prepared artifacts, so comparing the
four schemes on one benchmark pays the front-end cost once::

    run = prepare(workload, machine, params={"N": 64})
    results = {name: simulate(run, name) for name in ("base", "sc", "tpi", "hw")}
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Union

from repro.common.config import MachineConfig, default_machine
from repro.compiler.marking import Marking, MarkingOptions, mark_program
from repro.ir.program import Program
from repro.sim.engine import make_engine
from repro.sim.metrics import SimResult
from repro.trace.columnar import ColumnarTrace
from repro.trace.events import Trace
from repro.trace.generate import generate_columnar
from repro.trace.schedule import MigrationSpec


@dataclass
class PreparedRun:
    """Compiler + trace-generator output, reusable across schemes.

    ``trace`` is columnar (:class:`~repro.trace.columnar.ColumnarTrace`)
    when built by :func:`prepare`; both engines accept either form.
    ``compile_s``/``trace_s`` record the front-end phase wall times and
    feed the runtime's phase telemetry.
    """

    program: Program
    machine: MachineConfig
    marking: Marking
    trace: Union[Trace, ColumnarTrace]
    compile_s: float = 0.0
    trace_s: float = 0.0


def prepare(program: Program, machine: Optional[MachineConfig] = None,
            params: Optional[Dict[str, int]] = None,
            opts: Optional[MarkingOptions] = None,
            migration: Optional[MigrationSpec] = None) -> PreparedRun:
    """Compile and trace a program for a machine configuration."""
    machine = machine or default_machine()
    started = time.perf_counter()
    marking = mark_program(program, params, opts)
    compiled = time.perf_counter()
    trace = generate_columnar(program, machine, params, migration)
    traced = time.perf_counter()
    return PreparedRun(program=program, machine=machine, marking=marking,
                       trace=trace, compile_s=compiled - started,
                       trace_s=traced - compiled)


def simulate(run: Union[Program, PreparedRun], scheme: str,
             machine: Optional[MachineConfig] = None,
             params: Optional[Dict[str, int]] = None,
             opts: Optional[MarkingOptions] = None,
             migration: Optional[MigrationSpec] = None) -> SimResult:
    """Simulate one scheme; accepts a Program or a PreparedRun.

    With a :class:`PreparedRun`, an explicit ``machine`` overrides the
    back end while reusing the prepared front end — valid because traces
    depend only on ``n_procs``/``schedule`` (the fingerprint split), so a
    cache/timetag/latency sweep can gang many machines over one prepare.
    """
    if isinstance(run, Program):
        run = prepare(run, machine, params, opts, migration)
    elif machine is not None and machine is not run.machine:
        if (machine.n_procs != run.machine.n_procs
                or machine.schedule != run.machine.schedule):
            from repro.common.errors import SimulationError

            raise SimulationError(
                "machine override changes front-end fields "
                "(n_procs/schedule); prepare() again instead")
        return make_engine(run.trace, run.marking, machine, scheme).run()
    return make_engine(run.trace, run.marking, run.machine, scheme).run()


def simulate_all(run: Union[Program, PreparedRun],
                 schemes: Iterable[str] = ("base", "sc", "tpi", "hw"),
                 machine: Optional[MachineConfig] = None,
                 params: Optional[Dict[str, int]] = None,
                 opts: Optional[MarkingOptions] = None,
                 jobs: Optional[int] = 1,
                 cache=None, telemetry=None) -> Dict[str, SimResult]:
    """Simulate several schemes over one prepared run.

    ``jobs``/``cache``/``telemetry`` route execution through
    :mod:`repro.runtime`: ``jobs=N`` scatters the schemes across worker
    processes (the front end is still built exactly once), and a
    :class:`repro.runtime.ArtifactCache` makes repeat invocations
    near-free.  The default ``jobs=1`` with no cache keeps the original
    zero-overhead in-process path.
    """
    schemes = tuple(schemes)
    if jobs == 1 and cache is None and telemetry is None:
        if isinstance(run, Program):
            run = prepare(run, machine, params, opts)
        return {scheme: simulate(run, scheme) for scheme in schemes}

    from repro.runtime import ParallelExecutor, jobs_for_schemes

    if isinstance(run, Program):
        job_list = jobs_for_schemes(run, schemes, machine or default_machine(),
                                    params, opts)
        prepared = None
    else:
        job_list = jobs_for_schemes(run.program, schemes, run.machine,
                                    params, opts)
        # Hand the existing front end to the executor so it is never
        # rebuilt — and bypass the cache: a PreparedRun does not record the
        # options it was built with, so its provenance cannot be keyed.
        prepared = {job_list[0].prepare_fingerprint(): run}
        cache = None
    executor = ParallelExecutor(jobs=jobs, cache=cache, telemetry=telemetry)
    results = executor.run(job_list, prepared=prepared)
    return {job.scheme: result for job, result in zip(job_list, results)}
