"""One-call simulation facade.

``prepare`` runs the compiler (marking) and the trace generator once;
``simulate`` drives any scheme over the prepared artifacts, so comparing the
four schemes on one benchmark pays the front-end cost once::

    run = prepare(workload, machine, params={"N": 64})
    results = {name: simulate(run, name) for name in ("base", "sc", "tpi", "hw")}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Union

from repro.common.config import MachineConfig, default_machine
from repro.compiler.marking import Marking, MarkingOptions, mark_program
from repro.ir.program import Program
from repro.sim.engine import Engine
from repro.sim.metrics import SimResult
from repro.trace.events import Trace
from repro.trace.generate import generate_trace
from repro.trace.schedule import MigrationSpec


@dataclass
class PreparedRun:
    """Compiler + trace-generator output, reusable across schemes."""

    program: Program
    machine: MachineConfig
    marking: Marking
    trace: Trace


def prepare(program: Program, machine: Optional[MachineConfig] = None,
            params: Optional[Dict[str, int]] = None,
            opts: Optional[MarkingOptions] = None,
            migration: Optional[MigrationSpec] = None) -> PreparedRun:
    """Compile and trace a program for a machine configuration."""
    machine = machine or default_machine()
    marking = mark_program(program, params, opts)
    trace = generate_trace(program, machine, params, migration)
    return PreparedRun(program=program, machine=machine, marking=marking,
                       trace=trace)


def simulate(run: Union[Program, PreparedRun], scheme: str,
             machine: Optional[MachineConfig] = None,
             params: Optional[Dict[str, int]] = None,
             opts: Optional[MarkingOptions] = None,
             migration: Optional[MigrationSpec] = None) -> SimResult:
    """Simulate one scheme; accepts a Program or a PreparedRun."""
    if isinstance(run, Program):
        run = prepare(run, machine, params, opts, migration)
    return Engine(run.trace, run.marking, run.machine, scheme).run()


def simulate_all(run: Union[Program, PreparedRun],
                 schemes: Iterable[str] = ("base", "sc", "tpi", "hw"),
                 machine: Optional[MachineConfig] = None,
                 params: Optional[Dict[str, int]] = None,
                 opts: Optional[MarkingOptions] = None) -> Dict[str, SimResult]:
    """Simulate several schemes over one prepared run."""
    if isinstance(run, Program):
        run = prepare(run, machine, params, opts)
    return {scheme: simulate(run, scheme) for scheme in schemes}
