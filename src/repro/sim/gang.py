"""Gang simulation: many back-end configurations over one shared trace.

A *gang* is a set of (machine, scheme) members that differ only in
back-end fields — cache geometry, timetag width, write buffer, latencies —
and therefore share one :class:`~repro.trace.columnar.ColumnarTrace` (the
front-end fingerprint split in :mod:`repro.runtime.jobs` guarantees the
grouping).  Instead of each member redoing the trace-static analysis from
scratch, the gang:

* stacks the member configurations into numpy parameter arrays
  (:class:`~repro.coherence.batch.GangParams`) and resolves every event
  address to ``(line, set, word)`` for *all* distinct cache geometries in
  one ``(configs x events)`` broadcast per epoch (:func:`prime_group`);
* publishes the resulting per-geometry :class:`~repro.sim.fastengine.
  _EpochBatch` analyses on the shared epochs, where every member with
  that geometry — and every scheme, and the epoch pre-apply windows built
  downstream — reuses them;
* replays each member's hot (order-sensitive) events through the
  reference heap at identical ``(clock, proc, rank, idx)`` keys, exactly
  as a solo :class:`~repro.sim.fastengine.FastEngine` run would;
* steps every member through the trace **in lockstep** (epoch by epoch,
  not member by member), so the *scheme* axis broadcasts too: one pass
  over each epoch's shared analyses fills every member's counters while
  the structures are cache-hot (:func:`run_gang`).

Per-config *protocol* state is never shared: each member's results must
stay byte-identical to running that config alone on either engine (the
PR-3 parity contract, enforced by tests/test_gang.py), and protocol
transitions depend on the member's own latencies and network feedback.
What the gang vectorizes is the config axis of everything trace-static.

Fallbacks (each member silently degrades to a plain solo run):

* object (non-columnar) traces — nothing to broadcast over;
* sync epochs and epochs under the fast engine's batching floor — those
  fall back per-event inside each member anyway;
* a gang of one (or of identical configs) — priming is skipped, the
  single member just runs.

Select with ``MachineConfig.engine="gang"``, ``REPRO_ENGINE=gang``, or
``--engine gang``; the executor also gang-primes fast-engine groups
automatically, since the results are identical by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.coherence.batch import GangParams, resolve_geometries
from repro.sim.engine import make_engine, resolve_engine
from repro.sim.fastengine import _MIN_TASK_EVENTS, _EpochBatch, _TaskArrays
from repro.sim.metrics import SimResult
from repro.trace.columnar import KIND_WRITE, ColumnarTrace


@dataclass(frozen=True)
class GangMember:
    """One configuration riding the gang: a back-end machine and a scheme."""

    machine: Any
    scheme: str


def _prime_epoch(epoch, todo: Sequence[Tuple[int, int]],
                 batches: Dict) -> None:
    """Build the epoch's analyses for every geometry in ``todo`` at once.

    The geometry resolution runs as one broadcast per task
    (``GangParams.resolve``); each row feeds a pre-resolved
    :class:`_TaskArrays`, so the per-geometry :class:`_EpochBatch` is
    exactly what a solo run would have built lazily.
    """
    per_geometry: Dict[Tuple[int, int], List[_TaskArrays]] = \
        {g: [] for g in todo}
    for tc in epoch.task_columns():
        rows = resolve_geometries(tc.addr, todo)
        is_write = tc.kind == KIND_WRITE
        for geometry in todo:
            per_geometry[geometry].append(_TaskArrays(
                tc.proc, tc.extra_work, None, tc.n, tc.addr, tc.site,
                tc.work, tc.shared, is_write, geometry[0], geometry[1],
                geometry=rows[geometry]))
    for geometry in todo:
        batches[geometry] = _EpochBatch(epoch, geometry[0], geometry[1],
                                        tasks=per_geometry[geometry])


def prime_group(trace, machines: Sequence[Any]) -> Dict[str, Any]:
    """Pre-build the shared per-geometry epoch analyses for a gang.

    Walks the columnar trace once, and for each epoch the fast engine
    would batch, resolves all member geometries in one broadcast and
    publishes the analyses on ``epoch._batch`` — the member engines (and
    their pre-apply windows) then find every geometry already resolved.
    Purely an optimization: results are byte-identical with or without
    priming.  Returns a stats dict (``width``, ``geometries``,
    ``primed_epochs``, ``fallback``).
    """
    stats = {"width": len({_backend_token(m) for m in machines}),
             "geometries": 0, "primed_epochs": 0, "fallback": ""}
    if not isinstance(trace, ColumnarTrace):
        stats["fallback"] = "object-trace"
        return stats
    if len(machines) < 2:
        stats["fallback"] = "gang-of-one"
        return stats
    params = GangParams(machines)
    stats["geometries"] = params.n_geometries
    for epoch in trace.epochs:
        if epoch.n_events < _MIN_TASK_EVENTS * max(1, epoch.n_tasks):
            continue
        if epoch.has_sync:
            continue
        batches = epoch._batch
        if not isinstance(batches, dict):
            batches = {}
            epoch._batch = batches
        todo = [g for g in params.geometries if g not in batches]
        if not todo:
            continue
        _prime_epoch(epoch, todo, batches)
        stats["primed_epochs"] += 1
    return stats


def _backend_token(machine) -> str:
    """Canonical text of a machine's back-end half (gang-width dedup)."""
    from repro.runtime.jobs import canonical_json, split_machine

    _front, back = split_machine(machine)
    return canonical_json(back)


def distinct_backends(machines: Sequence[Any]) -> List[Any]:
    """The distinct back-end configurations among ``machines``, in order."""
    seen: Dict[str, Any] = {}
    for machine in machines:
        seen.setdefault(_backend_token(machine), machine)
    return list(seen.values())


def run_gang(prepared, members: Sequence[GangMember],
             stats: Optional[Dict[str, Any]] = None) -> List[SimResult]:
    """Simulate every gang member over one prepared front end.

    ``prepared`` is a :class:`~repro.sim.runner.PreparedRun`; all members
    must agree on the trace-relevant machine fields (they share its
    trace).  Members resolve their engines individually, so a
    ``"reference"`` member runs the untouched reference path while the
    rest share the primed analyses.  Results come back in member order,
    each byte-identical to a solo run of that (machine, scheme).

    The members run in **lockstep**: one epoch is stepped across every
    engine before any engine moves to the next (the engines' epoch-at-a-
    time ``start``/``step``/``finish`` face).  That broadcasts the
    *scheme* axis the same way priming broadcasts the geometry axis —
    each epoch's shared :class:`~repro.sim.fastengine._EpochBatch`
    analyses, hot partitions, and pre-apply windows are built by the
    first member to arrive and consumed by the rest while still
    cache-hot, instead of falling out of cache between whole-trace
    passes.  Per-member protocol state stays private, so the lockstep
    is pure scheduling: each result is byte-identical to a solo run.
    """
    members = list(members)
    gang = [m.machine for m in members
            if resolve_engine(m.machine) != "reference"]
    started = time.perf_counter()
    info = prime_group(prepared.trace, distinct_backends(gang))
    if stats is not None:
        stats["gang_width"] = max(stats.get("gang_width", 0), info["width"])
        phases = stats.setdefault("phases", {})
        phases["gang"] = (phases.get("gang", 0.0)
                          + time.perf_counter() - started)
    engines = [make_engine(prepared.trace, prepared.marking, member.machine,
                           member.scheme)
               for member in members]
    for engine in engines:
        engine.start()
    for epoch in prepared.trace.epochs:
        for engine in engines:
            engine.step(epoch)
    return [engine.finish() for engine in engines]


__all__ = ["GangMember", "distinct_backends", "prime_group", "run_gang"]
