"""Execution-driven simulator: engines, metrics, and the one-call runner."""

from repro.sim.metrics import SimResult
from repro.sim.engine import Engine, make_engine, resolve_engine
from repro.sim.fastengine import FastEngine
from repro.sim.runner import PreparedRun, prepare, simulate, simulate_all

__all__ = ["Engine", "FastEngine", "PreparedRun", "SimResult", "make_engine",
           "prepare", "resolve_engine", "simulate", "simulate_all"]
