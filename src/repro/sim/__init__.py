"""Execution-driven simulator: engine, metrics, and the one-call runner."""

from repro.sim.metrics import SimResult
from repro.sim.engine import Engine
from repro.sim.runner import PreparedRun, prepare, simulate, simulate_all

__all__ = ["Engine", "PreparedRun", "SimResult", "prepare", "simulate",
           "simulate_all"]
