"""The batched simulation engine.

The reference :class:`~repro.sim.engine.Engine` advances one event at a
time through a global heap so that cross-processor protocol interactions
happen in a deterministic timing-dependent order.  Most events need no
such ordering: within an epoch the network latencies are constant (rho
only moves at the barrier) and most lines are touched by a single
processor, so their accesses commute with everything another processor
does.  This engine exploits that:

* Each epoch's lines are split into **hot** — order-sensitive across
  processors under the scheme's :attr:`~repro.coherence.api.
  CoherenceScheme.batch_hot_rule` — and **cold** (everything else).
* Hot events replay through exactly the reference heap discipline, with
  identical keys ``(clock, proc, rank, idx)``, so their global order — and
  therefore every directory transition, invalidation count, and
  classification — is bit-identical to the reference engine.
* Each task's cold events run eagerly between its hot events, in program
  order, as numpy-batched spans (:mod:`repro.coherence.batch`) when the
  scheme provides a kernel, or through the ordinary per-event scheme
  methods otherwise.  Either way each event runs the same state
  transitions as under the reference engine; only the interleaving
  *between* processors differs, exactly where it is provably
  unobservable.

Epochs the analysis cannot clear — synchronization (locks / critical
sections), a scheme with no declared hot rule, or an eviction-coupled
scheme whose replacements might touch another processor's lines — fall
back wholesale to the reference ``_run_epoch``, so correctness never
depends on the batching being profitable.

Differential parity with the reference engine over every workload,
scheme, and a hypothesis-randomized program space is enforced by
tests/test_engine_parity.py; speedups are tracked in BENCH_engine.json
(see docs/PERF.md).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

import numpy as np

from repro.coherence.batch import _Cols
from repro.common.errors import SimulationError
from repro.sim import jit
from repro.sim.engine import Engine, _LockState
from repro.sim.metrics import EpochRecord
from repro.trace.columnar import KIND_WRITE, ColumnarEpoch
from repro.trace.events import EventKind, MemEvent


class _TaskArrays:
    """Columnar view of one task's events (geometry-resolved).

    Built straight from a :class:`~repro.trace.columnar.TaskColumns`
    slice (zero-copy) when the trace is columnar, or converted from an
    object :class:`~repro.trace.events.Task` otherwise.  ``events``
    materializes the object list lazily — only the per-event slow paths
    (kernel boundaries, poisoned spans, kernel-less schemes) touch it;
    the batch kernels run on the arrays.
    """

    __slots__ = ("_events", "proc", "extra_work", "n", "addr", "site",
                 "work", "shared", "is_write", "line", "set_", "word",
                 "uniq_lines", "uniq_sets")

    def __init__(self, proc, extra_work, events, n, addr, site, work,
                 shared, is_write, line_words: int, n_sets: int,
                 geometry=None):
        self.proc = proc
        self.extra_work = extra_work
        self._events = events
        self.n = n
        self.addr = addr
        self.site = site
        self.work = work
        self.shared = shared
        self.is_write = is_write
        if geometry is None:
            self.line = addr // line_words
            self.set_ = self.line % n_sets
            self.word = addr - self.line * line_words
        else:
            # Gang priming resolves every member geometry in one
            # (configs x events) broadcast and hands each row in here;
            # the formulas are identical, so results cannot differ.
            self.line, self.set_, self.word = geometry
        self.uniq_lines = np.unique(self.line)
        self.uniq_sets = np.unique(self.set_)

    @classmethod
    def from_task(cls, task, line_words: int, n_sets: int) -> "_TaskArrays":
        events = task.events
        n = len(events)
        return cls(
            task.proc, task.extra_work, events, n,
            np.fromiter((e.addr for e in events), np.int64, n),
            np.fromiter((e.site for e in events), np.int64, n),
            np.fromiter((e.work for e in events), np.int64, n),
            np.fromiter((e.shared for e in events), bool, n),
            np.fromiter((e.kind is EventKind.WRITE for e in events), bool, n),
            line_words, n_sets)

    @classmethod
    def from_columns(cls, tc, line_words: int, n_sets: int) -> "_TaskArrays":
        return cls(tc.proc, tc.extra_work, None, tc.n, tc.addr, tc.site,
                   tc.work, tc.shared, tc.kind == KIND_WRITE,
                   line_words, n_sets)

    @property
    def events(self):
        if self._events is None:
            # Only non-sync epochs build _TaskArrays, so every event is a
            # plain READ/WRITE outside any critical section.  Python-int
            # fields keep downstream accounting identical to object traces.
            self._events = [
                MemEvent(EventKind.WRITE if w else EventKind.READ,
                         addr, site, work, shared)
                for w, addr, site, work, shared in zip(
                    self.is_write.tolist(), self.addr.tolist(),
                    self.site.tolist(), self.work.tolist(),
                    self.shared.tolist())]
        return self._events


class _EpochBatch:
    """Trace-static batching analysis of one epoch, cached on the epoch
    (``TraceEpoch._batch``, a dict keyed by cache geometry) and shared by
    every scheme — and every gang member with that geometry — simulated
    over the trace in-process.  Everything here depends only on the event
    stream and the cache geometry — never on runtime protocol state."""

    __slots__ = ("geometry", "has_sync", "tasks", "multi_lines",
                 "hot_written", "static_masks", "static_idx", "other_lines",
                 "preapply_cache")

    def __init__(self, epoch, line_words: int, n_sets: int, tasks=None):
        self.geometry = (line_words, n_sets)
        # Hot-rule keyed cache of the merged pre-apply window (or a bail
        # marker); shared across schemes and repeated simulations.
        self.preapply_cache = {}
        if tasks is not None:
            # Gang priming pre-resolved the geometry (broadcast over the
            # config axis); only non-sync epochs are primed.
            self.has_sync = False
            self.tasks = tasks
        elif isinstance(epoch, ColumnarEpoch):
            self.has_sync = epoch.has_sync
            if self.has_sync:
                self.tasks = []
                return
            self.tasks = [_TaskArrays.from_columns(tc, line_words, n_sets)
                          for tc in epoch.task_columns()]
        else:
            self.has_sync = any(
                e.kind is EventKind.LOCK or e.kind is EventKind.UNLOCK
                or e.in_critical
                for task in epoch.tasks for e in task.events)
            if self.has_sync:
                # Sync epochs always fall back; skip the columnar views.
                self.tasks = []
                return
            self.tasks = [_TaskArrays.from_task(task, line_words, n_sets)
                          for task in epoch.tasks]
        # Lines touched by two or more tasks this epoch.
        all_lines = (np.concatenate([ta.uniq_lines for ta in self.tasks])
                     if self.tasks else np.zeros(0, dtype=np.int64))
        uniq, counts = np.unique(all_lines, return_counts=True)
        self.multi_lines = uniq[counts >= 2]
        written = [ta.line[ta.is_write] for ta in self.tasks]
        written_all = (np.unique(np.concatenate(written)) if written
                       else np.zeros(0, dtype=np.int64))
        # The "written" hot rule: multi-touched AND written this epoch.
        self.hot_written = np.intersect1d(self.multi_lines, written_all,
                                          assume_unique=True)
        self.static_masks = [np.isin(ta.line, self.hot_written)
                             for ta in self.tasks]
        self.static_idx = [np.flatnonzero(m) for m in self.static_masks]
        # For the eviction pre-check: lines any *other* task touches.
        self.other_lines = []
        for rank in range(len(self.tasks)):
            rest = [ta.uniq_lines for r, ta in enumerate(self.tasks)
                    if r != rank]
            self.other_lines.append(
                np.unique(np.concatenate(rest)) if rest
                else np.zeros(0, dtype=np.int64))


_NO_HOT = np.zeros(0, dtype=np.int64)
_MISS = object()

#: Minimum events per task for batching to pay for its numpy analysis.
#: Below this the per-epoch array set-up (unique/isin/intersect over a
#: handful of elements, times tasks, times schemes) costs more than the
#: per-event reference walk it replaces — flo52's many tiny epochs were
#: measurably *slower* batched (BENCH_engine.json pre-fix) while every
#: other workload sits comfortably above the floor.
_MIN_TASK_EVENTS = 32


class FastEngine(Engine):
    """Drop-in engine with batched cold spans; bit-identical results."""

    engine_name = "fast"

    def __init__(self, trace, marking, machine, scheme_name):
        super().__init__(trace, marking, machine, scheme_name)
        self._kernel = self.scheme.make_batch_kernel()
        self.jit_state = jit.attach(self)
        self._epoch_words = 0
        self._plan_key = "none"
        self._cur_batch = None
        self.batched_epochs = 0
        self.fallback_epochs = 0

    # ------------------------------------------------------------ planning

    def _plan_epoch(self, epoch) -> Optional[List[np.ndarray]]:
        """Per-task hot-event index arrays, or ``None`` to fall back."""
        rule = self.scheme.batch_hot_rule
        if rule is None:
            return None
        if epoch.n_events < _MIN_TASK_EVENTS * max(1, epoch.n_tasks):
            return None
        cache_cfg = self.machine.cache
        geometry = (cache_cfg.line_words, cache_cfg.n_sets)
        # One analysis per geometry, kept side by side so gang members
        # with different geometries never evict each other's work.
        batches = epoch._batch
        if not isinstance(batches, dict):
            batches = {}
            epoch._batch = batches
        batch = batches.get(geometry)
        if batch is None:
            batch = batches[geometry] = _EpochBatch(epoch, *geometry)
        self._cur_batch = batch
        if batch.has_sync:
            return None

        if rule == "none":
            hot_masks = None
            hot_idx = [_NO_HOT] * len(batch.tasks)
            self._plan_key = "none"
        elif rule == "written":
            hot_masks = batch.static_masks
            hot_idx = batch.static_idx
            self._plan_key = "written"
        elif rule == "directory":
            extra = self.scheme.directory_hot_lines(batch.multi_lines)
            if len(extra):
                extra = np.asarray(sorted(extra), dtype=np.int64)
                # Deterministic replay revisits the same directory states,
                # so identical extras recur across repeated simulations —
                # key the partition (and downstream pre-apply window) by
                # their content.
                self._plan_key = ("dir", extra.tobytes())
                cached = batch.preapply_cache.get(("plan", self._plan_key))
                if cached is not None:
                    hot_masks, hot_idx = cached
                else:
                    hot_masks = [mask | np.isin(ta.line, extra)
                                 for mask, ta in zip(batch.static_masks,
                                                     batch.tasks)]
                    hot_idx = [np.flatnonzero(m) for m in hot_masks]
                    batch.preapply_cache[("plan", self._plan_key)] = (
                        hot_masks, hot_idx)
            else:
                hot_masks = batch.static_masks
                hot_idx = batch.static_idx
                self._plan_key = "written"
        else:  # pragma: no cover - unknown rule: always safe to fall back
            return None

        if self.scheme.batch_evict_coupled:
            # Evictions mutate shared protocol state (directory entries,
            # sharer sets) and so must happen in the reference order unless
            # provably private.  Hot-event evictions do: they replay at the
            # reference heap keys, and within a task the occupant of a set
            # at a hot event's turn is fixed by program order plus heap-
            # ordered remote invalidations.  The hazard is an eagerly-timed
            # *cold* miss evicting a line another processor interacts with
            # this epoch.
            if cache_cfg.associativity != 1:
                # No kernel runs here anyway; victim choice is LRU-timing-
                # dependent, so just take the exact path.
                return None
            caches = self.scheme.caches
            for rank, ta in enumerate(batch.tasks):
                other = batch.other_lines[rank]
                if not len(other):
                    continue
                # 1. Epoch-start occupants a cold miss would displace.
                occ = caches[ta.proc].tags[ta.set_, 0]
                risk = (occ >= 0) & (occ != ta.line)
                if hot_masks is not None:
                    risk &= ~hot_masks[rank]
                if risk.any() and np.isin(occ[risk], other).any():
                    return None
                # 2. Mid-epoch installs: if a set holds two or more of this
                #    task's distinct lines and any of them is foreign-
                #    touched, a later cold miss could displace a freshly
                #    installed foreign-touched (or heap-timed hot) line.
                foreign = np.isin(ta.line, other)
                if foreign.any():
                    pairs = np.unique((ta.set_ << 32) | ta.line)
                    pair_sets = pairs >> 32
                    dup_sets = pair_sets[1:][pair_sets[1:] == pair_sets[:-1]]
                    if dup_sets.size and np.isin(
                            ta.set_[foreign], dup_sets).any():
                        return None
        return hot_idx

    # ------------------------------------------------------------- epochs

    def _run_epoch(self, epoch, global_time: int) -> int:
        hot_idx = self._plan_epoch(epoch)
        if hot_idx is None:
            self.fallback_epochs += 1
            if len(epoch.tasks) == 1:
                end_time = self._run_single_task_epoch(epoch, global_time)
            else:
                end_time = super()._run_epoch(epoch, global_time)
            if self._kernel is not None:
                self._kernel.resync()
            return end_time
        self.batched_epochs += 1
        return self._run_epoch_fast(epoch, global_time, hot_idx)

    def _run_single_task_epoch(self, epoch, global_time: int) -> int:
        """Fallback epochs with one task need no scheduling heap.

        A lone task's events execute in program order on one processor,
        so the heap's push/pop per event is pure overhead — the dominant
        cost of the many tiny serial epochs real programs carry.  Every
        event still takes the scheme's exact per-event path with the
        reference engine's accounting, so results are byte-identical.
        """
        machine = self.machine
        result = self.result
        breakdown = result.breakdown
        stalls = self.scheme.begin_epoch(epoch.index, epoch.parallel)
        self._epoch_words = 0
        reads_before = result.reads
        misses_before = result.read_misses

        task = epoch.tasks[0]
        proc = task.proc
        base = global_time + machine.epoch_setup_cycles
        breakdown["dispatch"] += base - global_time
        stall = stalls.get(proc, 0)
        breakdown["reset_stall"] += stall
        clock = base + stall
        if task.events:
            locks: Dict[int, _LockState] = {}
            for event in task.events:
                clock += event.work
                breakdown["busy"] += event.work
                kind = event.kind
                if kind is EventKind.READ or kind is EventKind.WRITE:
                    clock += self._exec_event(proc, event)
                elif kind is EventKind.LOCK:
                    state = locks.setdefault(event.lock, _LockState())
                    if state.held:
                        # Single processor: re-locking a held lock can
                        # never be released by anyone else.
                        raise SimulationError(
                            f"processor {proc} spun on lock {event.lock} "
                            "a million times: probable deadlock")
                    waited = max(clock, state.free_time) - clock
                    acquire = self.network.control_latency()
                    clock += waited + acquire
                    breakdown["sync_stall"] += waited + acquire
                    state.held = True
                    state.holder = proc
                    result.extra["lock_acquires"] = (
                        result.extra.get("lock_acquires", 0) + 1)
                elif kind is EventKind.UNLOCK:
                    state = locks.setdefault(event.lock, _LockState())
                    if not state.held or state.holder != proc:
                        raise SimulationError(
                            f"processor {proc} released lock {event.lock} it "
                            "does not hold (mis-migrated critical section?)")
                    r = self.scheme.release_fence(proc)
                    clock += r.latency
                    breakdown["sync_stall"] += r.latency
                    result.note_traffic(r.read_words, r.write_words,
                                        r.coherence_words)
                    self._epoch_words += r.total_words
                    state.held = False
                    state.holder = -1
                    state.free_time = clock
                else:  # pragma: no cover - closed enum
                    raise SimulationError(f"unknown event kind {kind}")
            held = [lock for lock, state in locks.items() if state.held]
            if held:
                raise SimulationError(
                    f"epoch {epoch.index} ended with locks held: {held}")
            clock += task.extra_work
            breakdown["busy"] += task.extra_work
        else:
            clock = base + stall

        barrier_words = self.scheme.end_epoch(epoch.write_key)
        for _proc, words in barrier_words.items():
            if words:
                result.note_traffic(0, words, 0)
                self._epoch_words += words
        self.shadow.barrier()

        end_time = max(clock, base)
        breakdown["barrier_idle"] += end_time - clock
        breakdown["barrier_idle"] += ((machine.n_procs - 1)
                                      * (end_time - global_time))
        epoch_cycles = max(1, end_time - global_time)
        self.network.observe_epoch(self._epoch_words, epoch_cycles,
                                   machine.network_smoothing)
        if machine.record_epochs:
            result.epoch_records.append(EpochRecord(
                index=epoch.index, parallel=epoch.parallel,
                label=epoch.label, cycles=epoch_cycles,
                reads=result.reads - reads_before,
                read_misses=result.read_misses - misses_before,
                words_injected=self._epoch_words,
                network_load=self.network.rho))
        return end_time

    def _run_epoch_fast(self, epoch, global_time: int,
                        hot_idx: List[np.ndarray]) -> int:
        machine = self.machine
        result = self.result
        breakdown = result.breakdown
        stalls = self.scheme.begin_epoch(epoch.index, epoch.parallel)
        self._epoch_words = 0
        reads_before = result.reads
        misses_before = result.read_misses
        if self._kernel is not None:
            self._kernel.begin_epoch()

        batch = self._cur_batch
        preapplied = False
        if self._kernel is not None and getattr(self._kernel, "full_batch",
                                                False):
            preapplied = self._preapply_epoch(batch, hot_idx)
        base = global_time + machine.epoch_setup_cycles
        clocks: Dict[int, int] = {}
        heap: List = []
        hot_pos = [0] * len(batch.tasks)
        for rank, ta in enumerate(batch.tasks):
            start = base + machine.task_dispatch_cycles * rank
            breakdown["dispatch"] += start - global_time
            stall = stalls.get(ta.proc, 0)
            breakdown["reset_stall"] += stall
            start += stall
            clocks[ta.proc] = start

        for rank, ta in enumerate(batch.tasks):
            if ta.n:
                self._advance(batch, rank, 0, clocks[ta.proc],
                              hot_idx, hot_pos, clocks, heap)

        # Hot events replay with the reference engine's exact heap keys,
        # so every cross-processor interaction happens in the same global
        # order the reference engine would produce.
        while heap:
            clock, proc, rank, idx = heapq.heappop(heap)
            ta = batch.tasks[rank]
            work = int(ta.work[idx])
            clock += work
            breakdown["busy"] += work
            if self._kernel is not None:
                clock += self._kernel.boundary(self, proc, ta, idx)
            else:
                clock += self._exec_event(proc, ta.events[idx])
            hot_pos[rank] += 1
            self._advance(batch, rank, idx + 1, clock,
                          hot_idx, hot_pos, clocks, heap)

        if preapplied:
            self._kernel.clear_memo()
        barrier_words = self.scheme.end_epoch(epoch.write_key)
        for _proc, words in barrier_words.items():
            if words:
                result.note_traffic(0, words, 0)
                self._epoch_words += words
        self.shadow.barrier()

        end_time = max(clocks.values(), default=global_time)
        end_time = max(end_time, base)
        for proc_clock in clocks.values():
            breakdown["barrier_idle"] += end_time - proc_clock
        breakdown["barrier_idle"] += ((machine.n_procs - len(clocks))
                                      * (end_time - global_time))
        epoch_cycles = max(1, end_time - global_time)
        self.network.observe_epoch(self._epoch_words, epoch_cycles,
                                   machine.network_smoothing)
        if machine.record_epochs:
            result.epoch_records.append(EpochRecord(
                index=epoch.index, parallel=epoch.parallel,
                label=epoch.label, cycles=epoch_cycles,
                reads=result.reads - reads_before,
                read_misses=result.read_misses - misses_before,
                words_injected=self._epoch_words,
                network_load=self.network.rho))
        return end_time

    # ---------------------------------------------------------- pre-apply

    def _preapply_epoch(self, batch, hot_idx) -> bool:
        """Try to run *all* of the epoch's cold events through one merged
        kernel scan before dispatch (full-batch kernels only).

        Sound whenever the hot and cold events occupy disjoint cache
        sets: the set index is a global function of the line address, so
        set-disjointness implies line-disjointness for every side channel
        the hot replay can observe — cache sets (including the targets of
        remote invalidations), shadow words, directory entries (a line
        resident in a cold set cannot be a hot line), touched/seen bits
        and write-buffer entries keyed by address.  Counters are
        commutative sums and all latencies are epoch-latched, so the
        pre-applied cold state and per-task latency sums are exactly what
        interleaved execution would produce; :meth:`~repro.coherence.
        batch._FullBatchKernel.span` then replays them from memoized
        prefix sums.  When two tasks share a processor *and* the epoch
        has hot events, their cold segments resume in heap order rather
        than rank order, so any cold set shared between such tasks forces
        a bail-out (without hot events the merged rank order is exactly
        the dispatch order)."""
        tasks = batch.tasks
        any_hot = any(len(h) for h in hot_idx)
        # The pieces, guard outcome, and merged window depend only on the
        # trace and the hot-index partition — never on runtime protocol
        # state — so cache them under the partition key ``_plan_epoch``
        # recorded: "written"/"none" are shared by every scheme;
        # directory partitions are keyed by their extra hot lines, which
        # recur across repeated (deterministic) simulations.
        key = "none" if not any_hot else self._plan_key
        cached = batch.preapply_cache.get(key, _MISS)
        if cached is not _MISS:
            if cached is None:
                return False
            pieces, cols = cached
            return self._kernel.preapply(self, pieces, cols)
        if any_hot:
            hot_sets = np.unique(np.concatenate(
                [ta.set_[h] for ta, h in zip(tasks, hot_idx) if len(h)]))
            proc_sets: Dict[int, np.ndarray] = {}
        pieces = []
        for rank, ta in enumerate(tasks):
            if ta.n == 0:
                continue
            h = hot_idx[rank]
            if len(h):
                sel = np.ones(ta.n, dtype=bool)
                sel[h] = False
                if not sel.any():
                    continue
                cold_sets = np.unique(ta.set_[sel])
            else:
                sel = None
                cold_sets = ta.uniq_sets
            if any_hot:
                if np.isin(cold_sets, hot_sets).any():
                    batch.preapply_cache[key] = None
                    return False
                seen = proc_sets.get(ta.proc)
                if seen is None:
                    proc_sets[ta.proc] = cold_sets
                else:
                    if np.isin(cold_sets, seen).any():
                        batch.preapply_cache[key] = None
                        return False
                    proc_sets[ta.proc] = np.union1d(seen, cold_sets)
            pieces.append((ta.proc, ta, sel))
        if not pieces:
            batch.preapply_cache[key] = None
            return False
        cols = _Cols.merged(pieces, self.machine.cache.n_sets,
                            self.shadow.total_words)
        batch.preapply_cache[key] = (pieces, cols)
        return self._kernel.preapply(self, pieces, cols)

    # ------------------------------------------------------------ advance

    def _advance(self, batch, rank: int, start_idx: int, clock: int,
                 hot_idx, hot_pos, clocks, heap) -> None:
        """Run a task's cold events from ``start_idx`` up to its next hot
        event (pushed onto the heap) or to completion."""
        ta = batch.tasks[rank]
        hot = hot_idx[rank]
        position = hot_pos[rank]
        stop = int(hot[position]) if position < len(hot) else ta.n
        clock += self._run_cold(ta.proc, ta, start_idx, stop)
        if position < len(hot):
            heapq.heappush(heap, (clock, ta.proc, rank, stop))
        else:
            clock += ta.extra_work
            self.result.breakdown["busy"] += ta.extra_work
            clocks[ta.proc] = clock

    def _run_cold(self, proc: int, ta: _TaskArrays, lo: int, hi: int) -> int:
        if lo >= hi:
            return 0
        if self._kernel is not None:
            return self._kernel.span(self, proc, ta, lo, hi)
        elapsed = 0
        busy = self.result.breakdown
        for i in range(lo, hi):
            event = ta.events[i]
            busy["busy"] += event.work
            elapsed += event.work + self._exec_event(proc, event)
        return elapsed

    # ----------------------------------------------------------- per-event

    def _exec_event(self, proc: int, event) -> int:
        """One READ/WRITE through the scheme, with the reference engine's
        accounting; returns the processor-visible latency."""
        result = self.result
        if event.kind is EventKind.READ:
            r = self.scheme.read(proc, event.addr, event.site,
                                 event.shared, event.in_critical)
            if r.kind.is_miss:
                result.breakdown["read_stall"] += r.latency
            else:
                result.breakdown["busy"] += r.latency
            result.note_read(event.shared, r.kind, r.latency)
        else:
            r = self.scheme.write(proc, event.addr, event.site,
                                  event.shared, event.in_critical)
            if r.latency > self.machine.hit_latency:
                result.breakdown["write_stall"] += r.latency
            else:
                result.breakdown["busy"] += r.latency
            result.note_write(event.shared)
        result.note_traffic(r.read_words, r.write_words, r.coherence_words)
        self._epoch_words += r.total_words
        return r.latency
