"""The execution-driven simulation engine.

Processors keep local clocks; within an epoch the engine always advances the
processor with the smallest clock (a heap), so cross-processor protocol
interactions (directory invalidations, lock hand-offs) happen in a
plausible, deterministic global order that *depends on the timing* — the
defining property of execution-driven simulation [32].  Epoch boundaries
are barriers: every processor synchronizes to the slowest one, plus the
loop-setup and task-dispatch overheads of Figure 8's simulated scheduling
operations.

Network load feeds back: after each epoch the Kruskal-Snir model's offered
load is updated from the words injected during the epoch, so traffic-heavy
programs see longer miss latencies in subsequent epochs (smoothed
exponentially; see ``MachineConfig.network_smoothing``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List

from repro.coherence.api import CoherenceScheme, SimContext, make_scheme
from repro.common.config import MachineConfig
from repro.common.errors import SimulationError
from repro.compiler.marking import Marking
from repro.memsys.memory import ShadowMemory
from repro.memsys.network import KruskalSnirNetwork
from repro.sim.metrics import EpochRecord, SimResult
from repro.trace.events import EventKind, Trace

_LOCK_RETRY_CYCLES = 16


@dataclass
class _LockState:
    held: bool = False
    holder: int = -1
    free_time: int = 0
    spins: int = 0


class Engine:
    """Drives one trace through one coherence scheme."""

    engine_name = "reference"

    def __init__(self, trace: Trace, marking: Marking, machine: MachineConfig,
                 scheme_name: str):
        if trace.layout is None:
            raise SimulationError("trace has no memory layout")
        self.trace = trace
        self.machine = machine
        # The layout is fixed-aligned (trace-invariant across back ends),
        # so pad the shadow to a whole number of *this* machine's lines —
        # a line fill may slice past the last allocated word.
        line_words = machine.cache.line_words
        total = -(-trace.layout.total_words // line_words) * line_words
        self.shadow = ShadowMemory(total)
        self.network = KruskalSnirNetwork(machine)
        self.ctx = SimContext(machine=machine, marking=marking,
                              shadow=self.shadow, network=self.network,
                              layout=trace.layout)
        self.scheme: CoherenceScheme = make_scheme(scheme_name, self.ctx)
        self.result = SimResult(scheme=self.scheme.name,
                                program=trace.program_name,
                                n_procs=machine.n_procs)

    # ------------------------------------------------------------------ run

    def run(self) -> SimResult:
        self.start()
        for epoch in self.trace.epochs:
            self.step(epoch)
        return self.finish()

    # The epoch-at-a-time face of the same loop: a gang runs many engines
    # in lockstep (one epoch across every member, then the next), so each
    # epoch's shared trace-static analyses are built once and consumed
    # while still cache-hot.  ``run() == start(); step(each); finish()``
    # by construction — there is only one loop body.

    def start(self) -> None:
        """Reset the global clock; feed epochs through :meth:`step`."""
        self._global_time = 0

    def step(self, epoch) -> None:
        """Advance this engine through one epoch (in trace order)."""
        self._global_time = self._run_epoch(epoch, self._global_time)

    def finish(self) -> SimResult:
        """Seal and return the result after the last :meth:`step`."""
        self.result.exec_cycles = self._global_time
        self.result.epochs = len(self.trace.epochs)
        self.result.final_network_load = self.network.rho
        self.result.engine = self.engine_name
        self.result.jit = getattr(self, "jit_state", "")
        self._collect_scheme_extras()
        return self.result

    def _run_epoch(self, epoch, global_time: int) -> int:
        machine = self.machine
        stalls = self.scheme.begin_epoch(epoch.index, epoch.parallel)
        epoch_words = 0
        breakdown = self.result.breakdown
        reads_before = self.result.reads
        misses_before = self.result.read_misses

        base = global_time + machine.epoch_setup_cycles
        clocks: Dict[int, int] = {}
        heap: List = []
        for rank, task in enumerate(epoch.tasks):
            start = base + machine.task_dispatch_cycles * rank
            breakdown["dispatch"] += start - global_time
            stall = stalls.get(task.proc, 0)
            breakdown["reset_stall"] += stall
            start += stall
            clocks[task.proc] = start
            if task.events:
                heapq.heappush(heap, (start, task.proc, rank, 0))

        locks: Dict[int, _LockState] = {}
        tasks_by_rank = list(epoch.tasks)
        # Compute work is charged once per event, even when a lock spin
        # re-processes the same index.
        work_charged = [-1] * len(tasks_by_rank)

        while heap:
            clock, proc, rank, idx = heapq.heappop(heap)
            task = tasks_by_rank[rank]
            event = task.events[idx]
            if idx > work_charged[rank]:
                clock += event.work
                breakdown["busy"] += event.work
                work_charged[rank] = idx
            advance = True

            if event.kind is EventKind.READ:
                r = self.scheme.read(proc, event.addr, event.site,
                                     event.shared, event.in_critical)
                clock += r.latency
                if r.kind.is_miss:
                    breakdown["read_stall"] += r.latency
                else:
                    breakdown["busy"] += r.latency
                self.result.note_read(event.shared, r.kind, r.latency)
                self.result.note_traffic(r.read_words, r.write_words,
                                         r.coherence_words)
                epoch_words += r.total_words
            elif event.kind is EventKind.WRITE:
                r = self.scheme.write(proc, event.addr, event.site,
                                      event.shared, event.in_critical)
                clock += r.latency
                if r.latency > machine.hit_latency:
                    # Only a stalling consistency model produces this.
                    breakdown["write_stall"] += r.latency
                else:
                    breakdown["busy"] += r.latency
                self.result.note_write(event.shared)
                self.result.note_traffic(r.read_words, r.write_words,
                                         r.coherence_words)
                epoch_words += r.total_words
            elif event.kind is EventKind.LOCK:
                state = locks.setdefault(event.lock, _LockState())
                if state.held:
                    # Spin: jump past the holder's current position and retry.
                    waited = max(clock + _LOCK_RETRY_CYCLES,
                                 clocks.get(state.holder, clock) + 1) - clock
                    clock += waited
                    breakdown["sync_stall"] += waited
                    advance = False
                    state.spins += 1
                    if state.spins > 10 ** 6:
                        raise SimulationError(
                            f"processor {proc} spun on lock {event.lock} "
                            "a million times: probable deadlock")
                else:
                    waited = max(clock, state.free_time) - clock
                    acquire = self.network.control_latency()
                    clock += waited + acquire
                    breakdown["sync_stall"] += waited + acquire
                    state.held = True
                    state.holder = proc
                    self.result.extra["lock_acquires"] = (
                        self.result.extra.get("lock_acquires", 0) + 1)
            elif event.kind is EventKind.UNLOCK:
                state = locks.setdefault(event.lock, _LockState())
                if not state.held or state.holder != proc:
                    raise SimulationError(
                        f"processor {proc} released lock {event.lock} it "
                        "does not hold (mis-migrated critical section?)")
                r = self.scheme.release_fence(proc)
                clock += r.latency
                breakdown["sync_stall"] += r.latency
                self.result.note_traffic(r.read_words, r.write_words,
                                         r.coherence_words)
                epoch_words += r.total_words
                state.held = False
                state.holder = -1
                state.free_time = clock
            else:  # pragma: no cover - closed enum
                raise SimulationError(f"unknown event kind {event.kind}")

            clocks[proc] = clock
            next_idx = idx + 1 if advance else idx
            if next_idx < len(task.events):
                heapq.heappush(heap, (clock, proc, rank, next_idx))
            elif advance:
                clocks[proc] = clock + task.extra_work
                breakdown["busy"] += task.extra_work

        held = [lock for lock, state in locks.items() if state.held]
        if held:
            raise SimulationError(f"epoch {epoch.index} ended with locks held: {held}")

        barrier_words = self.scheme.end_epoch(epoch.write_key)
        for proc, words in barrier_words.items():
            if words:
                self.result.note_traffic(0, words, 0)
                epoch_words += words
        self.shadow.barrier()

        end_time = max(clocks.values(), default=global_time)
        end_time = max(end_time, base)
        # Barrier idle: participating processors wait for the slowest one;
        # processors with no task in this epoch idle through all of it.
        for proc_clock in clocks.values():
            breakdown["barrier_idle"] += end_time - proc_clock
        breakdown["barrier_idle"] += ((machine.n_procs - len(clocks))
                                      * (end_time - global_time))
        epoch_cycles = max(1, end_time - global_time)
        self.network.observe_epoch(epoch_words, epoch_cycles,
                                   self.machine.network_smoothing)
        if machine.record_epochs:
            self.result.epoch_records.append(EpochRecord(
                index=epoch.index, parallel=epoch.parallel,
                label=epoch.label, cycles=epoch_cycles,
                reads=self.result.reads - reads_before,
                read_misses=self.result.read_misses - misses_before,
                words_injected=epoch_words,
                network_load=self.network.rho))
        return end_time

    def _collect_scheme_extras(self) -> None:
        self.result.resets = self.scheme.resets
        self.result.reset_invalidations = self.scheme.reset_invalidations
        self.result.extra.update(self.scheme.extras())


DEFAULT_ENGINE = "fast"
ENGINE_NAMES = ("fast", "gang", "reference")


def resolve_engine(machine: MachineConfig) -> str:
    """Resolve a machine's ``engine`` field to a concrete engine name.

    ``"auto"`` defers to the ``REPRO_ENGINE`` environment variable and
    then to :data:`DEFAULT_ENGINE`; the engines are differentially
    tested to produce bit-identical results (tests/test_engine_parity.py,
    tests/test_gang.py), so the choice affects wall-clock only.
    """
    import os

    choice = machine.engine
    if choice == "auto":
        choice = os.environ.get("REPRO_ENGINE", "") or DEFAULT_ENGINE
    if choice not in ENGINE_NAMES:
        raise SimulationError(
            f"unknown engine {choice!r}; choose from {ENGINE_NAMES} or 'auto'")
    return choice


def make_engine(trace: Trace, marking: Marking, machine: MachineConfig,
                scheme_name: str) -> Engine:
    """Instantiate the engine selected by ``machine.engine``/``REPRO_ENGINE``.

    ``"gang"`` maps to the fast engine here: a single (machine, scheme)
    is a gang of one.  The config-axis sharing lives in
    :func:`repro.sim.gang.prime_group`, which the executor applies to
    whole groups before their members reach this call.
    """
    if resolve_engine(machine) in ("fast", "gang"):
        from repro.sim.fastengine import FastEngine

        return FastEngine(trace, marking, machine, scheme_name)
    return Engine(trace, marking, machine, scheme_name)
