"""Simulation results and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.stats import MissKind, TrafficClass


@dataclass(frozen=True)
class EpochRecord:
    """Per-epoch profile entry (recorded when the machine asks for it)."""

    index: int
    parallel: bool
    label: str
    cycles: int
    reads: int
    read_misses: int
    words_injected: int
    network_load: float

    @property
    def miss_rate(self) -> float:
        return self.read_misses / self.reads if self.reads else 0.0


@dataclass
class SimResult:
    """Everything one (program, scheme, machine) simulation produced.

    ``miss_counts`` classifies read misses (and BASE's uncached reads);
    ``traffic`` is in network words by class; ``miss_latency_*`` accumulate
    over read misses only (the quantity in the paper's average-miss-latency
    table: writes are buffered and have no processor-visible latency).
    """

    scheme: str
    program: str
    n_procs: int
    exec_cycles: int = 0
    epochs: int = 0
    reads: int = 0
    writes: int = 0
    shared_reads: int = 0
    shared_writes: int = 0
    miss_counts: Dict[MissKind, int] = field(default_factory=dict)
    miss_latency_total: int = 0
    miss_latency_count: int = 0
    traffic: Dict[TrafficClass, int] = field(default_factory=dict)
    breakdown: Dict[str, int] = field(default_factory=lambda: {
        "busy": 0, "read_stall": 0, "write_stall": 0, "sync_stall": 0,
        "reset_stall": 0, "dispatch": 0, "barrier_idle": 0})
    resets: int = 0
    reset_invalidations: int = 0
    final_network_load: float = 0.0
    extra: Dict[str, int] = field(default_factory=dict)
    epoch_records: List[EpochRecord] = field(default_factory=list)
    engine: str = ""
    """Which engine produced this result ("fast"/"reference"): provenance
    for cached artifacts and telemetry.  Deliberately absent from
    :meth:`to_dict` — the engines are bit-identical by contract, and the
    JSON rendering must not differ between them."""
    jit: str = ""
    """Compiled-tier provenance: ``""`` (tier not requested), ``"numba"``,
    ``"interp"``, or ``"fallback:<reason>"`` when the tier was requested
    but declined (numba missing, no batch kernel for the geometry, a
    compile error, …).  Like ``engine``, deliberately absent from
    :meth:`to_dict`: the compiled tier is bit-identical by contract."""

    # ------------------------------------------------------------- recording

    def note_read(self, shared: bool, kind: MissKind, latency: int) -> None:
        self.reads += 1
        if shared:
            self.shared_reads += 1
        self.miss_counts[kind] = self.miss_counts.get(kind, 0) + 1
        if kind.is_miss:
            self.miss_latency_total += latency
            self.miss_latency_count += 1

    def note_write(self, shared: bool) -> None:
        self.writes += 1
        if shared:
            self.shared_writes += 1

    def note_traffic(self, read_words: int, write_words: int,
                     coherence_words: int) -> None:
        for cls, words in ((TrafficClass.READ, read_words),
                           (TrafficClass.WRITE, write_words),
                           (TrafficClass.COHERENCE, coherence_words)):
            if words:
                self.traffic[cls] = self.traffic.get(cls, 0) + words

    # --------------------------------------------------------------- derived

    @property
    def read_misses(self) -> int:
        return sum(count for kind, count in self.miss_counts.items()
                   if kind.is_miss)

    @property
    def miss_rate(self) -> float:
        """Read miss rate (the quantity of the paper's Figure 11)."""
        return self.read_misses / self.reads if self.reads else 0.0

    @property
    def avg_miss_latency(self) -> float:
        if not self.miss_latency_count:
            return 0.0
        return self.miss_latency_total / self.miss_latency_count

    @property
    def unnecessary_misses(self) -> int:
        """False-sharing (HW) or compiler-conservative (TPI/SC) misses."""
        return sum(count for kind, count in self.miss_counts.items()
                   if kind.is_unnecessary)

    @property
    def unnecessary_fraction(self) -> float:
        misses = self.read_misses
        return self.unnecessary_misses / misses if misses else 0.0

    @property
    def total_traffic(self) -> int:
        return sum(self.traffic.values())

    def traffic_per_access(self) -> float:
        accesses = self.reads + self.writes
        return self.total_traffic / accesses if accesses else 0.0

    def kind_count(self, kind: MissKind) -> int:
        return self.miss_counts.get(kind, 0)

    def to_dict(self) -> Dict:
        """JSON-friendly snapshot (enums become their value strings).

        The variable-key sub-dicts are key-sorted so the rendering is
        canonical: the two engines accumulate identical counts in different
        orders, and ``json.dumps`` of this snapshot must be byte-identical
        across engines, worker counts, and repeated runs.
        """
        return {
            "scheme": self.scheme, "program": self.program,
            "n_procs": self.n_procs, "exec_cycles": self.exec_cycles,
            "epochs": self.epochs, "reads": self.reads, "writes": self.writes,
            "shared_reads": self.shared_reads,
            "shared_writes": self.shared_writes,
            "miss_counts": {kind.value: count for kind, count in sorted(
                self.miss_counts.items(), key=lambda kv: kv[0].value)},
            "miss_rate": self.miss_rate,
            "avg_miss_latency": self.avg_miss_latency,
            "traffic": {cls.value: words for cls, words in sorted(
                self.traffic.items(), key=lambda kv: kv[0].value)},
            "breakdown": dict(self.breakdown),
            "resets": self.resets,
            "final_network_load": self.final_network_load,
            "extra": {key: self.extra[key] for key in sorted(self.extra)},
        }

    def breakdown_fractions(self) -> Dict[str, float]:
        """Processor-cycle breakdown as fractions of P * exec_cycles.

        The engine accounts every processor-cycle of the run to exactly one
        category (busy / read_stall / write_stall / sync_stall /
        reset_stall / dispatch / barrier_idle), so the fractions sum to 1.
        """
        total = max(1, self.n_procs * self.exec_cycles)
        return {name: value / total for name, value in self.breakdown.items()}

    def summary(self) -> str:
        busy_pct = 100.0 * self.breakdown_fractions().get("busy", 0.0)
        lines = [
            f"{self.program} / {self.scheme}: {self.exec_cycles} cycles, "
            f"{self.epochs} epochs, {busy_pct:.0f}% busy",
            f"  reads {self.reads} (miss rate {100 * self.miss_rate:.2f}%), "
            f"writes {self.writes}",
            f"  avg miss latency {self.avg_miss_latency:.1f} cycles",
            f"  traffic: " + ", ".join(
                f"{cls.value}={words}" for cls, words in sorted(
                    self.traffic.items(), key=lambda kv: kv[0].value)),
            "  misses: " + ", ".join(
                f"{kind.value}={count}" for kind, count in sorted(
                    self.miss_counts.items(), key=lambda kv: kv[0].value)
                if kind.is_miss),
        ]
        return "\n".join(lines)
