"""Parameter-sweep utility: grid studies over machine configurations.

A :class:`Sweep` takes a base machine and named *axes*, each a list of
``(label, transform)`` pairs where the transform maps a machine to a new
machine.  ``run()`` produces one :class:`SweepPoint` per cell of the
cartesian grid.  Execution goes through :mod:`repro.runtime`: cells are
grouped by front-end fingerprint, so the compiler/trace front end runs
once per *distinct machine configuration* (not once per cell — two cells
whose transforms land on the same machine share it, as do all schemes of
one cell).  ``run(jobs=N)`` fans the grid out across ``N`` worker
processes, and ``run(cache=...)`` reuses artifacts across invocations;
serial and parallel execution produce identical results.  Axis helpers
build the common cases::

    from repro.sim.sweep import Sweep, axis_cache_lines, axis_timetag_bits

    sweep = Sweep(build_workload("ocean"), schemes=("tpi", "hw"))
    sweep.add_axis("line", axis_cache_lines([1, 4, 16]))
    sweep.add_axis("k", axis_timetag_bits([2, 4, 8]))
    for point in sweep.run(jobs=4):
        print(point.labels, point.result.miss_rate)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.config import (
    CacheConfig,
    MachineConfig,
    TpiConfig,
    WriteBufferKind,
    default_machine,
)
from repro.ir.program import Program
from repro.sim.metrics import SimResult

Transform = Callable[[MachineConfig], MachineConfig]
Axis = List[Tuple[str, Transform]]


@dataclass(frozen=True)
class SweepPoint:
    """One simulated grid cell."""

    labels: Dict[str, str]
    scheme: str
    result: SimResult


class Sweep:
    """Cartesian sweep over machine-transform axes."""

    def __init__(self, program: Program,
                 schemes: Sequence[str] = ("tpi", "hw"),
                 base: Optional[MachineConfig] = None,
                 params: Optional[Dict[str, int]] = None):
        self.program = program
        self.schemes = tuple(schemes)
        self.base = base or default_machine()
        self.params = params
        self._axes: List[Tuple[str, Axis]] = []

    def add_axis(self, name: str, axis: Axis) -> "Sweep":
        if not axis:
            raise ValueError(f"axis {name!r} has no points")
        self._axes.append((name, axis))
        return self

    def run(self, jobs: Optional[int] = 1, cache=None,
            telemetry=None, timeout: Optional[float] = None) -> List[SweepPoint]:
        """Simulate every grid cell; see the module docstring for knobs.

        ``jobs`` is the worker-process count (``1`` = in-process serial,
        ``None``/``0`` = all cores); ``cache`` an optional
        :class:`repro.runtime.ArtifactCache`; ``telemetry`` an optional
        :class:`repro.runtime.Telemetry` accumulating counters and per-job
        wall times.  Point order is always grid order, schemes innermost.
        """
        if not self._axes:
            raise ValueError("sweep has no axes; add at least one")
        from repro.runtime import ParallelExecutor, expand_sweep

        job_list = expand_sweep(self)
        executor = ParallelExecutor(jobs=jobs, cache=cache,
                                    telemetry=telemetry, timeout=timeout)
        results = executor.run(job_list)
        return [SweepPoint(labels=job.tag, scheme=job.scheme, result=result)
                for job, result in zip(job_list, results)]


#: Axis names accepted by :func:`axis_from_spec` (the CLI/server grammar).
AXIS_SPEC_NAMES = ("line", "size", "k", "procs", "wbuf")


def axis_from_spec(spec: str) -> Tuple[str, Axis]:
    """Parse one ``name=v1,v2,...`` axis spec into ``(name, axis)``.

    The grammar shared by ``repro sweep --axis`` and the ``axes`` field
    of a ``POST /sweep`` request: ``line=<words>``, ``size=<KB>``,
    ``k=<bits>``, ``procs=<N>`` take comma-separated integers; ``wbuf``
    takes no values.  Raises :class:`ValueError` with an actionable
    message on an unknown name or a non-integer value.
    """
    name, _, raw = spec.partition("=")
    values = [v for v in raw.split(",") if v]
    if name not in AXIS_SPEC_NAMES:
        raise ValueError(f"unknown axis {name!r}; choose from "
                         f"{', '.join(AXIS_SPEC_NAMES)}")
    if name == "wbuf":
        return name, axis_write_buffer()
    try:
        numbers = [int(v) for v in values]
    except ValueError:
        raise ValueError(f"axis {name!r} takes comma-separated integers, "
                         f"got {raw!r}") from None
    if not numbers:
        raise ValueError(f"axis {name!r} needs at least one value, "
                         f"e.g. {name}=1,4")
    makers = {"line": axis_cache_lines, "size": axis_cache_sizes,
              "k": axis_timetag_bits, "procs": axis_procs}
    return name, makers[name](numbers)


def sweep_from_specs(program: Program, specs: Sequence[str],
                     schemes: Sequence[str] = ("tpi", "hw"),
                     base: Optional[MachineConfig] = None,
                     params: Optional[Dict[str, int]] = None) -> Sweep:
    """Build a :class:`Sweep` from textual axis specs (CLI/server shape)."""
    if not specs:
        raise ValueError("sweep needs at least one axis spec")
    sweep = Sweep(program, schemes=tuple(schemes), base=base, params=params)
    for spec in specs:
        name, axis = axis_from_spec(spec)
        sweep.add_axis(name, axis)
    return sweep


def axis_cache_lines(line_words: Iterable[int]) -> Axis:
    def make(words: int) -> Transform:
        def transform(m: MachineConfig) -> MachineConfig:
            return m.with_(cache=CacheConfig(size_bytes=m.cache.size_bytes,
                                             line_words=words,
                                             associativity=m.cache.associativity))
        return transform
    return [(f"{w * 4}B", make(w)) for w in line_words]


def axis_cache_sizes(kilobytes: Iterable[int]) -> Axis:
    def make(kb: int) -> Transform:
        def transform(m: MachineConfig) -> MachineConfig:
            return m.with_(cache=CacheConfig(size_bytes=kb * 1024,
                                             line_words=m.cache.line_words,
                                             associativity=m.cache.associativity))
        return transform
    return [(f"{kb}KB", make(kb)) for kb in kilobytes]


def axis_timetag_bits(bits: Iterable[int]) -> Axis:
    def make(k: int) -> Transform:
        def transform(m: MachineConfig) -> MachineConfig:
            return m.with_(tpi=TpiConfig(timetag_bits=k,
                                         reset_policy=m.tpi.reset_policy,
                                         reset_stall_cycles=m.tpi.reset_stall_cycles))
        return transform
    return [(f"k={k}", make(k)) for k in bits]


def axis_procs(counts: Iterable[int]) -> Axis:
    def make(p: int) -> Transform:
        def transform(m: MachineConfig) -> MachineConfig:
            return m.with_(n_procs=p)
        return transform
    return [(f"P={p}", make(p)) for p in counts]


def axis_write_buffer() -> Axis:
    def make(kind: WriteBufferKind) -> Transform:
        def transform(m: MachineConfig) -> MachineConfig:
            return m.with_(write_buffer=kind)
        return transform
    return [(kind.value, make(kind)) for kind in WriteBufferKind]
