"""Parameter-sweep utility: grid studies over machine configurations.

A :class:`Sweep` takes a base machine and named *axes*, each a list of
``(label, transform)`` pairs where the transform maps a machine to a new
machine.  ``run()`` produces one :class:`SweepPoint` per cell of the
cartesian grid.  Execution goes through :mod:`repro.runtime`: cells are
grouped by front-end fingerprint, so the compiler/trace front end runs
once per *distinct machine configuration* (not once per cell — two cells
whose transforms land on the same machine share it, as do all schemes of
one cell).  ``run(jobs=N)`` fans the grid out across ``N`` worker
processes, and ``run(cache=...)`` reuses artifacts across invocations;
serial and parallel execution produce identical results.  Axis helpers
build the common cases::

    from repro.sim.sweep import Sweep, axis_cache_lines, axis_timetag_bits

    sweep = Sweep(build_workload("ocean"), schemes=("tpi", "hw"))
    sweep.add_axis("line", axis_cache_lines([1, 4, 16]))
    sweep.add_axis("k", axis_timetag_bits([2, 4, 8]))
    for point in sweep.run(jobs=4):
        print(point.labels, point.result.miss_rate)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.config import (
    CacheConfig,
    MachineConfig,
    TpiConfig,
    WriteBufferKind,
    default_machine,
)
from repro.ir.program import Program
from repro.sim.metrics import SimResult

Transform = Callable[[MachineConfig], MachineConfig]
Axis = List[Tuple[str, Transform]]


@dataclass(frozen=True)
class SweepPoint:
    """One simulated grid cell."""

    labels: Dict[str, str]
    scheme: str
    result: SimResult


class Sweep:
    """Cartesian sweep over machine-transform axes."""

    def __init__(self, program: Program,
                 schemes: Sequence[str] = ("tpi", "hw"),
                 base: Optional[MachineConfig] = None,
                 params: Optional[Dict[str, int]] = None):
        self.program = program
        self.schemes = tuple(schemes)
        self.base = base or default_machine()
        self.params = params
        self._axes: List[Tuple[str, Axis]] = []

    def add_axis(self, name: str, axis: Axis) -> "Sweep":
        if not axis:
            raise ValueError(f"axis {name!r} has no points")
        self._axes.append((name, axis))
        return self

    def run(self, jobs: Optional[int] = 1, cache=None,
            telemetry=None, timeout: Optional[float] = None) -> List[SweepPoint]:
        """Simulate every grid cell; see the module docstring for knobs.

        ``jobs`` is the worker-process count (``1`` = in-process serial,
        ``None``/``0`` = all cores); ``cache`` an optional
        :class:`repro.runtime.ArtifactCache`; ``telemetry`` an optional
        :class:`repro.runtime.Telemetry` accumulating counters and per-job
        wall times.  Point order is always grid order, schemes innermost.
        """
        if not self._axes:
            raise ValueError("sweep has no axes; add at least one")
        from repro.runtime import ParallelExecutor, expand_sweep

        job_list = expand_sweep(self)
        executor = ParallelExecutor(jobs=jobs, cache=cache,
                                    telemetry=telemetry, timeout=timeout)
        results = executor.run(job_list)
        return [SweepPoint(labels=job.tag, scheme=job.scheme, result=result)
                for job, result in zip(job_list, results)]


def axis_cache_lines(line_words: Iterable[int]) -> Axis:
    def make(words: int) -> Transform:
        def transform(m: MachineConfig) -> MachineConfig:
            return m.with_(cache=CacheConfig(size_bytes=m.cache.size_bytes,
                                             line_words=words,
                                             associativity=m.cache.associativity))
        return transform
    return [(f"{w * 4}B", make(w)) for w in line_words]


def axis_cache_sizes(kilobytes: Iterable[int]) -> Axis:
    def make(kb: int) -> Transform:
        def transform(m: MachineConfig) -> MachineConfig:
            return m.with_(cache=CacheConfig(size_bytes=kb * 1024,
                                             line_words=m.cache.line_words,
                                             associativity=m.cache.associativity))
        return transform
    return [(f"{kb}KB", make(kb)) for kb in kilobytes]


def axis_timetag_bits(bits: Iterable[int]) -> Axis:
    def make(k: int) -> Transform:
        def transform(m: MachineConfig) -> MachineConfig:
            return m.with_(tpi=TpiConfig(timetag_bits=k,
                                         reset_policy=m.tpi.reset_policy,
                                         reset_stall_cycles=m.tpi.reset_stall_cycles))
        return transform
    return [(f"k={k}", make(k)) for k in bits]


def axis_procs(counts: Iterable[int]) -> Axis:
    def make(p: int) -> Transform:
        def transform(m: MachineConfig) -> MachineConfig:
            return m.with_(n_procs=p)
        return transform
    return [(f"P={p}", make(p)) for p in counts]


def axis_write_buffer() -> Axis:
    def make(kind: WriteBufferKind) -> Transform:
        def transform(m: MachineConfig) -> MachineConfig:
            return m.with_(write_buffer=kind)
        return transform
    return [(kind.value, make(kind)) for kind in WriteBufferKind]
